package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"videoapp/internal/faultio"
	"videoapp/internal/obs"
	"videoapp/internal/store"
)

// fetch is get with headers: one GET, fully drained.
func fetch(t testing.TB, client *http.Client, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// chaosCatalog is the acceptance trio: one archive per backend kind, the
// third behind a faultio decorator with a seeded corruption profile.
type chaosCatalog struct {
	names  []string       // catalog order: disk, mem, flaky
	chunks map[string]int // archive name -> chunk count
	data   map[string][]byte
	seed   int64
	pol    store.FaultPolicy
}

func buildChaosCatalog(t *testing.T) *chaosCatalog {
	t.Helper()
	cc := &chaosCatalog{
		names: []string{"disk", "mem", "flaky"},
		chunks: map[string]int{
			"disk":  3,
			"mem":   2,
			"flaky": 4,
		},
		data: map[string][]byte{},
		pol:  chaosPolicy(),
	}
	for name, n := range cc.chunks {
		cc.data[name] = buildArchiveBytes(t, n)
	}
	cc.seed = findChaosSeed(t, cc.data["flaky"])
	return cc
}

// specs returns fresh ArchiveSpecs for one catalog instance. Open funcs
// return fresh backends each call (lazy reopen contract); the flaky
// archive's faultio decorator restarts from the same seed, so identical
// request sequences replay identical faults.
func (cc *chaosCatalog) specs(t *testing.T, dir string) []ArchiveSpec {
	t.Helper()
	path := filepath.Join(dir, "disk.vacs")
	if _, err := os.Stat(path); err != nil {
		if err := os.WriteFile(path, cc.data["disk"], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pol := cc.pol
	return []ArchiveSpec{
		{Name: "disk", Open: func() (store.Backend, error) { return store.OpenFileBackend(path, false) }},
		{Name: "mem", Open: func() (store.Backend, error) { return store.NewMemBackend(cc.data["mem"]), nil }},
		{
			Name: "flaky",
			Open: func() (store.Backend, error) {
				return faultio.Wrap(store.NewSnapshotBackend(cc.data["flaky"]), chaosProfile(cc.seed)), nil
			},
			Options:     []store.ArchiveOption{store.WithFaultPolicy(pol)},
			FaultPolicy: &pol,
		},
	}
}

// chunkResp is one replayed response, everything a client can observe.
type chunkResp struct {
	Archive  string
	Chunk    int
	Status   int
	Degraded string
	Body     string
}

// replay runs the fixed sequential request order — every chunk of every
// archive, archives in catalog order — against a fresh catalog.
func (cc *chaosCatalog) replay(t *testing.T, dir string) []chunkResp {
	t.Helper()
	cat, err := NewCatalog(cc.specs(t, dir), WithFaultPolicy(cc.pol))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	ts := httptest.NewServer(cat.Handler())
	defer ts.Close()
	var out []chunkResp
	for _, name := range cc.names {
		for i := 0; i < cc.chunks[name]; i++ {
			status, body, hdr := fetch(t, ts.Client(), fmt.Sprintf("%s/v1/archives/%s/chunks/%d", ts.URL, name, i))
			out = append(out, chunkResp{
				Archive:  name,
				Chunk:    i,
				Status:   status,
				Degraded: hdr.Get("X-Videoapp-Degraded"),
				Body:     string(body),
			})
		}
	}
	return out
}

// TestCatalogChaos is the multi-archive acceptance test: a catalog serving
// three archives on three different backends — a read-only file, a memory
// region, and a snapshot behind a faultio decorator with a seeded
// corruption profile — takes mixed traffic from 32 concurrent clients.
// Required properties:
//
//   - replay determinism: two fresh catalogs under the same seed answer the
//     same sequential request order with byte-identical bodies, statuses
//     and degradation headers, with at least one degraded response;
//   - availability: the concurrent run answers no 5xx other than 503, and
//     clean-backend responses are byte-identical to the serial reference;
//   - tenancy: per-archive decode/request counters are labeled by archive,
//     the serve_catalog_open_archives gauge tracks all three opens, and the
//     shared decoded-chunk cache stays under its byte budget while evicting
//     across archives.
func TestCatalogChaos(t *testing.T) {
	cc := buildChaosCatalog(t)
	dir := t.TempDir()

	// Byte-identical replay under the same seed.
	r1 := cc.replay(t, dir)
	r2 := cc.replay(t, dir)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same-seed replays differ:\n%+v\n%+v", r1, r2)
	}
	nDegraded := 0
	for _, r := range r1 {
		if r.Status != http.StatusOK {
			t.Fatalf("replay %s/%d: status %d, want 200", r.Archive, r.Chunk, r.Status)
		}
		if r.Degraded != "" {
			nDegraded++
			if r.Archive != "flaky" {
				t.Fatalf("clean archive %q answered degraded (%s)", r.Archive, r.Degraded)
			}
		}
	}
	if nDegraded == 0 {
		t.Fatal("vetted seed produced no degraded response through the catalog")
	}

	// Serial reference bodies for the clean backends.
	ref := map[string][][]byte{}
	for _, name := range []string{"disk", "mem"} {
		a, err := store.OpenChunkArchiveAt(bytes.NewReader(cc.data[name]))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cc.chunks[name]; i++ {
			ref[name] = append(ref[name], wantChunkBody(t, a, i))
		}
	}

	// The concurrent run: 32 clients × 24 requests, archives interleaved,
	// under a cache budget far below the working set so archives contend
	// for (and evict each other from) the shared cache.
	const budget = int64(96 << 10)
	cat, err := NewCatalog(cc.specs(t, dir), WithFaultPolicy(cc.pol), WithCacheBytes(budget))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	ts := httptest.NewServer(cat.Handler())
	defer ts.Close()

	const clients = 32
	const perClient = 24
	var wg sync.WaitGroup
	var served, degraded atomic.Int64
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for r := 0; r < perClient; r++ {
				name := cc.names[(c+r)%len(cc.names)]
				i := (c*perClient + r) % cc.chunks[name]
				resp, err := client.Get(fmt.Sprintf("%s/v1/archives/%s/chunks/%d", ts.URL, name, i))
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %w", c, r, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: reading body: %w", c, r, err)
					return
				}
				served.Add(1)
				if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
					errs <- fmt.Errorf("%s/%d: status %d (only 503 is an acceptable 5xx): %s",
						name, i, resp.StatusCode, body)
					return
				}
				if resp.StatusCode == http.StatusOK {
					if got := resp.Header.Get("X-Archive-Name"); got != name {
						errs <- fmt.Errorf("%s/%d: X-Archive-Name = %q", name, i, got)
						return
					}
					if want, clean := ref[name]; clean && !bytes.Equal(body, want[i]) {
						errs <- fmt.Errorf("%s/%d: body diverged from serial reference", name, i)
						return
					}
				}
				if h := resp.Header.Get("X-Videoapp-Degraded"); h != "" {
					degraded.Add(1)
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("%s/%d: degraded response with status %d", name, i, resp.StatusCode)
						return
					}
					if name != "flaky" {
						errs <- fmt.Errorf("clean archive %q answered degraded (%s)", name, h)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := served.Load(); got != clients*perClient {
		t.Fatalf("served %d of %d requests", got, clients*perClient)
	}

	// Tenancy accounting: all three archives open and gauged, per-archive
	// labeled counters, shared cache at or under budget after evictions.
	if got := cat.OpenArchives(); got != 3 {
		t.Fatalf("OpenArchives = %d, want 3", got)
	}
	snap := cat.Metrics().Snapshot()
	if got := snap.Gauge(obs.GaugeCatalogOpenArchives, ""); got != 3 {
		t.Fatalf("%s = %v, want 3", obs.GaugeCatalogOpenArchives, got)
	}
	for _, name := range cc.names {
		if snap.Counter(obs.CtrServeDecodes, name) == 0 {
			t.Fatalf("no %s decodes counted for archive %q", obs.CtrServeDecodes, name)
		}
		if snap.Counter(obs.CtrServeCacheMisses, name) == 0 {
			t.Fatalf("no cache misses counted for archive %q", name)
		}
	}
	cs := cat.CacheStats()
	if cs.Cost > budget {
		t.Fatalf("shared cache cost %d over budget %d", cs.Cost, budget)
	}
	if cs.Evictions == 0 {
		t.Fatal("working set over budget evicted nothing")
	}
	if names := cat.Names(); !reflect.DeepEqual(names, []string{"disk", "flaky", "mem"}) {
		t.Fatalf("Names() = %v", names)
	}
	if def := cat.DefaultName(); def != "disk" {
		t.Fatalf("DefaultName() = %q, want first-added %q", def, "disk")
	}
}

// TestCatalogIdleClose pins the idle-close lifecycle: a lazily-opened
// archive closes after IdleTimeout of disuse (and only then), the
// open-archives gauge tracks it, and the next request transparently
// reopens a fresh generation — the pre-close cache entries are never
// reused, so the chunk decodes again.
func TestCatalogIdleClose(t *testing.T) {
	data := buildArchiveBytes(t, 2)
	const idle = 50 * time.Millisecond
	cat, err := NewCatalog([]ArchiveSpec{
		{Name: "m", Open: func() (store.Backend, error) { return store.NewMemBackend(data), nil }},
	}, WithIdleTimeout(idle))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	ts := httptest.NewServer(cat.Handler())
	defer ts.Close()

	if got := cat.OpenArchives(); got != 0 {
		t.Fatalf("OpenArchives = %d before any request, want 0 (lazy open)", got)
	}
	status, body, _ := fetch(t, ts.Client(), ts.URL+"/v1/archives/m/chunks/0")
	if status != http.StatusOK {
		t.Fatalf("first read: status %d: %s", status, body)
	}
	if got := cat.OpenArchives(); got != 1 {
		t.Fatalf("OpenArchives = %d after request, want 1", got)
	}

	// Not yet idle: a sweep right now closes nothing.
	if n := cat.CloseIdle(time.Now()); n != 0 {
		t.Fatalf("CloseIdle before timeout closed %d archives", n)
	}
	// Past the timeout (simulated clock) the sweep closes it.
	if n := cat.CloseIdle(time.Now().Add(time.Second)); n != 1 {
		t.Fatalf("CloseIdle past timeout closed %d archives, want 1", n)
	}
	if got := cat.OpenArchives(); got != 0 {
		t.Fatalf("OpenArchives = %d after idle close, want 0", got)
	}
	if got := cat.Metrics().Snapshot().Gauge(obs.GaugeCatalogOpenArchives, ""); got != 0 {
		t.Fatalf("%s = %v after idle close, want 0", obs.GaugeCatalogOpenArchives, got)
	}

	// The next request reopens transparently — and decodes again: the new
	// generation gets a fresh cache namespace, so nothing cached before the
	// close can leak into the reopened archive.
	status, _, _ = fetch(t, ts.Client(), ts.URL+"/v1/archives/m/chunks/0")
	if status != http.StatusOK {
		t.Fatalf("post-reopen read: status %d", status)
	}
	if got := cat.OpenArchives(); got != 1 {
		t.Fatalf("OpenArchives = %d after reopen, want 1", got)
	}
	if got := cat.Metrics().Snapshot().Counter(obs.CtrServeDecodes, "m"); got != 2 {
		t.Fatalf("decodes = %d, want 2 (reopen must not serve the stale generation's cache)", got)
	}
}

// TestCatalogAddRemove exercises runtime membership: name validation,
// duplicate rejection, default election, removal with cache purge, and the
// 404 JSON contract for a removed archive.
func TestCatalogAddRemove(t *testing.T) {
	data := buildArchiveBytes(t, 2)
	open := func() (store.Backend, error) { return store.NewMemBackend(data), nil }
	cat, err := NewCatalog(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	for _, bad := range []ArchiveSpec{
		{Name: "", Open: open},
		{Name: "a/b", Open: open},
		{Name: "a#1", Open: open},
		{Name: "ok"}, // no Open
	} {
		if err := cat.Add(bad); err == nil {
			t.Fatalf("Add(%q) accepted an invalid spec", bad.Name)
		}
	}
	if err := cat.Add(ArchiveSpec{Name: "first", Open: open}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(ArchiveSpec{Name: "second", Open: open}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(ArchiveSpec{Name: "first", Open: open}); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if def := cat.DefaultName(); def != "first" {
		t.Fatalf("DefaultName = %q, want %q", def, "first")
	}

	ts := httptest.NewServer(cat.Handler())
	defer ts.Close()

	// The legacy routes alias the default archive.
	status, _, hdr := fetch(t, ts.Client(), ts.URL+"/v1/chunks/0")
	if status != http.StatusOK || hdr.Get("X-Archive-Name") != "first" {
		t.Fatalf("legacy route: status %d archive %q, want 200 from %q", status, hdr.Get("X-Archive-Name"), "first")
	}

	// The listing shows both, flags the default, and tracks openness.
	status, body, _ := fetch(t, ts.Client(), ts.URL+"/v1/archives")
	if status != http.StatusOK {
		t.Fatalf("listing: status %d", status)
	}
	var listing struct {
		Archives []struct {
			Name    string `json:"name"`
			Default bool   `json:"default"`
			Open    bool   `json:"open"`
		} `json:"archives"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("listing not JSON: %v: %s", err, body)
	}
	if len(listing.Archives) != 2 || listing.Archives[0].Name != "first" || !listing.Archives[0].Default ||
		!listing.Archives[0].Open || listing.Archives[1].Open {
		t.Fatalf("listing = %+v", listing)
	}

	if err := cat.Remove("second"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Remove("second"); !errors.Is(err, ErrArchiveNotFound) {
		t.Fatalf("double Remove: %v, want ErrArchiveNotFound", err)
	}
	status, body, hdr = fetch(t, ts.Client(), ts.URL+"/v1/archives/second/chunks/0")
	if status != http.StatusNotFound {
		t.Fatalf("removed archive: status %d, want 404", status)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != "archive_not_found" ||
		hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("removed archive error body %q (Content-Type %q, parse %v)", body, hdr.Get("Content-Type"), err)
	}
	// The survivor still serves; removing the default does not reroute it.
	status, _, _ = fetch(t, ts.Client(), ts.URL+"/v1/archives/first/chunks/0")
	if status != http.StatusOK {
		t.Fatalf("surviving archive: status %d", status)
	}
}

// TestCatalogOpenFailure pins the unreachable-medium contract: a spec whose
// Open fails answers 503 + Retry-After with code "read_failed" (the device,
// not the data), the catalog keeps serving its healthy archives, and the
// failed tenant recovers on the next request once its medium returns.
func TestCatalogOpenFailure(t *testing.T) {
	data := buildArchiveBytes(t, 2)
	var down atomic.Bool
	down.Store(true)
	cat, err := NewCatalog([]ArchiveSpec{
		{Name: "ok", Open: func() (store.Backend, error) { return store.NewMemBackend(data), nil }},
		{Name: "detached", Open: func() (store.Backend, error) {
			if down.Load() {
				return nil, errors.New("medium offline")
			}
			return store.NewMemBackend(data), nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	ts := httptest.NewServer(cat.Handler())
	defer ts.Close()

	status, body, hdr := fetch(t, ts.Client(), ts.URL+"/v1/archives/detached/chunks/0")
	if status != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("detached archive: status %d retry-after %q, want 503 with hint", status, hdr.Get("Retry-After"))
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != "read_failed" {
		t.Fatalf("detached archive error body %q (parse %v)", body, err)
	}
	// Healthy tenants are unaffected.
	if status, _, _ := fetch(t, ts.Client(), ts.URL+"/v1/archives/ok/chunks/0"); status != http.StatusOK {
		t.Fatalf("healthy archive: status %d", status)
	}
	// The medium comes back; the next request opens it.
	down.Store(false)
	if status, _, _ := fetch(t, ts.Client(), ts.URL+"/v1/archives/detached/chunks/0"); status != http.StatusOK {
		t.Fatalf("recovered archive: status %d", status)
	}
	if got := cat.OpenArchives(); got != 2 {
		t.Fatalf("OpenArchives = %d, want 2", got)
	}
}
