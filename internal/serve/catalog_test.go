package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"videoapp/internal/faultio"
	"videoapp/internal/obs"
	"videoapp/internal/store"
)

// fetch is get with headers: one GET, fully drained.
func fetch(t testing.TB, client *http.Client, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// chaosCatalog is the acceptance trio: one archive per backend kind, the
// third behind a faultio decorator with a seeded corruption profile.
type chaosCatalog struct {
	names  []string       // catalog order: disk, mem, flaky
	chunks map[string]int // archive name -> chunk count
	data   map[string][]byte
	seed   int64
	pol    store.FaultPolicy
}

func buildChaosCatalog(t *testing.T) *chaosCatalog {
	t.Helper()
	cc := &chaosCatalog{
		names: []string{"disk", "mem", "flaky"},
		chunks: map[string]int{
			"disk":  3,
			"mem":   2,
			"flaky": 4,
		},
		data: map[string][]byte{},
		pol:  chaosPolicy(),
	}
	for name, n := range cc.chunks {
		cc.data[name] = buildArchiveBytes(t, n)
	}
	cc.seed = findChaosSeed(t, cc.data["flaky"])
	return cc
}

// specs returns fresh ArchiveSpecs for one catalog instance. Open funcs
// return fresh backends each call (lazy reopen contract); the flaky
// archive's faultio decorator restarts from the same seed, so identical
// request sequences replay identical faults.
func (cc *chaosCatalog) specs(t *testing.T, dir string) []ArchiveSpec {
	t.Helper()
	path := filepath.Join(dir, "disk.vacs")
	if _, err := os.Stat(path); err != nil {
		if err := os.WriteFile(path, cc.data["disk"], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pol := cc.pol
	return []ArchiveSpec{
		{Name: "disk", Open: func() (store.Backend, error) { return store.OpenFileBackend(path, false) }},
		{Name: "mem", Open: func() (store.Backend, error) { return store.NewMemBackend(cc.data["mem"]), nil }},
		{
			Name: "flaky",
			Open: func() (store.Backend, error) {
				return faultio.Wrap(store.NewSnapshotBackend(cc.data["flaky"]), chaosProfile(cc.seed)), nil
			},
			Options:     []store.ArchiveOption{store.WithFaultPolicy(pol)},
			FaultPolicy: &pol,
		},
	}
}

// chunkResp is one replayed response, everything a client can observe.
type chunkResp struct {
	Archive  string
	Chunk    int
	Status   int
	Degraded string
	Body     string
}

// replay runs the fixed sequential request order — every chunk of every
// archive, archives in catalog order — against a fresh catalog.
func (cc *chaosCatalog) replay(t *testing.T, dir string) []chunkResp {
	t.Helper()
	cat, err := NewCatalog(cc.specs(t, dir), WithFaultPolicy(cc.pol))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	ts := httptest.NewServer(cat.Handler())
	defer ts.Close()
	var out []chunkResp
	for _, name := range cc.names {
		for i := 0; i < cc.chunks[name]; i++ {
			status, body, hdr := fetch(t, ts.Client(), fmt.Sprintf("%s/v1/archives/%s/chunks/%d", ts.URL, name, i))
			out = append(out, chunkResp{
				Archive:  name,
				Chunk:    i,
				Status:   status,
				Degraded: hdr.Get("X-Videoapp-Degraded"),
				Body:     string(body),
			})
		}
	}
	return out
}

// TestCatalogChaos is the multi-archive acceptance test: a catalog serving
// three archives on three different backends — a read-only file, a memory
// region, and a snapshot behind a faultio decorator with a seeded
// corruption profile — takes mixed traffic from 32 concurrent clients.
// Required properties:
//
//   - replay determinism: two fresh catalogs under the same seed answer the
//     same sequential request order with byte-identical bodies, statuses
//     and degradation headers, with at least one degraded response;
//   - availability: the concurrent run answers no 5xx other than 503, and
//     clean-backend responses are byte-identical to the serial reference;
//   - tenancy: per-archive decode/request counters are labeled by archive,
//     the serve_catalog_open_archives gauge tracks all three opens, and the
//     shared decoded-chunk cache stays under its byte budget while evicting
//     across archives.
func TestCatalogChaos(t *testing.T) {
	cc := buildChaosCatalog(t)
	dir := t.TempDir()

	// Byte-identical replay under the same seed.
	r1 := cc.replay(t, dir)
	r2 := cc.replay(t, dir)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same-seed replays differ:\n%+v\n%+v", r1, r2)
	}
	nDegraded := 0
	for _, r := range r1 {
		if r.Status != http.StatusOK {
			t.Fatalf("replay %s/%d: status %d, want 200", r.Archive, r.Chunk, r.Status)
		}
		if r.Degraded != "" {
			nDegraded++
			if r.Archive != "flaky" {
				t.Fatalf("clean archive %q answered degraded (%s)", r.Archive, r.Degraded)
			}
		}
	}
	if nDegraded == 0 {
		t.Fatal("vetted seed produced no degraded response through the catalog")
	}

	// Serial reference bodies for the clean backends.
	ref := map[string][][]byte{}
	for _, name := range []string{"disk", "mem"} {
		a, err := store.OpenChunkArchiveAt(bytes.NewReader(cc.data[name]))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cc.chunks[name]; i++ {
			ref[name] = append(ref[name], wantChunkBody(t, a, i))
		}
	}

	// The concurrent run: 32 clients × 24 requests, archives interleaved,
	// under a cache budget far below the working set so archives contend
	// for (and evict each other from) the shared cache.
	// One shard: the tiny budget must act as one global LRU (a chunk is
	// bigger than a 1/8th shard slice) so cross-archive eviction stays
	// observable. Readahead stays on — the chaos contract must hold with
	// prefetch issuing background loads.
	const budget = int64(96 << 10)
	cat, err := NewCatalog(cc.specs(t, dir), WithFaultPolicy(cc.pol), WithCacheBytes(budget), WithCacheShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	ts := httptest.NewServer(cat.Handler())
	defer ts.Close()

	const clients = 32
	const perClient = 24
	var wg sync.WaitGroup
	var served, degraded atomic.Int64
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for r := 0; r < perClient; r++ {
				name := cc.names[(c+r)%len(cc.names)]
				i := (c*perClient + r) % cc.chunks[name]
				resp, err := client.Get(fmt.Sprintf("%s/v1/archives/%s/chunks/%d", ts.URL, name, i))
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %w", c, r, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: reading body: %w", c, r, err)
					return
				}
				served.Add(1)
				if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
					errs <- fmt.Errorf("%s/%d: status %d (only 503 is an acceptable 5xx): %s",
						name, i, resp.StatusCode, body)
					return
				}
				if resp.StatusCode == http.StatusOK {
					if got := resp.Header.Get("X-Archive-Name"); got != name {
						errs <- fmt.Errorf("%s/%d: X-Archive-Name = %q", name, i, got)
						return
					}
					if want, clean := ref[name]; clean && !bytes.Equal(body, want[i]) {
						errs <- fmt.Errorf("%s/%d: body diverged from serial reference", name, i)
						return
					}
				}
				if h := resp.Header.Get("X-Videoapp-Degraded"); h != "" {
					degraded.Add(1)
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("%s/%d: degraded response with status %d", name, i, resp.StatusCode)
						return
					}
					if name != "flaky" {
						errs <- fmt.Errorf("clean archive %q answered degraded (%s)", name, h)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := served.Load(); got != clients*perClient {
		t.Fatalf("served %d of %d requests", got, clients*perClient)
	}

	// Tenancy accounting: all three archives open and gauged, per-archive
	// labeled counters, shared cache at or under budget after evictions.
	if got := cat.OpenArchives(); got != 3 {
		t.Fatalf("OpenArchives = %d, want 3", got)
	}
	snap := cat.Metrics().Snapshot()
	if got := snap.Gauge(obs.GaugeCatalogOpenArchives, ""); got != 3 {
		t.Fatalf("%s = %v, want 3", obs.GaugeCatalogOpenArchives, got)
	}
	for _, name := range cc.names {
		if snap.Counter(obs.CtrServeDecodes, name) == 0 {
			t.Fatalf("no %s decodes counted for archive %q", obs.CtrServeDecodes, name)
		}
		if snap.Counter(obs.CtrServeCacheMisses, name) == 0 {
			t.Fatalf("no cache misses counted for archive %q", name)
		}
	}
	cs := cat.CacheStats()
	if cs.Cost > budget {
		t.Fatalf("shared cache cost %d over budget %d", cs.Cost, budget)
	}
	if cs.Evictions == 0 {
		t.Fatal("working set over budget evicted nothing")
	}
	if names := cat.Names(); !reflect.DeepEqual(names, []string{"disk", "flaky", "mem"}) {
		t.Fatalf("Names() = %v", names)
	}
	if def := cat.DefaultName(); def != "disk" {
		t.Fatalf("DefaultName() = %q, want first-added %q", def, "disk")
	}
}

// TestCatalogIdleClose pins the idle-close lifecycle: a lazily-opened
// archive closes after IdleTimeout of disuse (and only then), the
// open-archives gauge tracks it, and the next request transparently
// reopens a fresh generation — the pre-close cache entries are never
// reused, so the chunk decodes again.
func TestCatalogIdleClose(t *testing.T) {
	data := buildArchiveBytes(t, 2)
	const idle = 50 * time.Millisecond
	cat, err := NewCatalog([]ArchiveSpec{
		{Name: "m", Open: func() (store.Backend, error) { return store.NewMemBackend(data), nil }},
	}, WithIdleTimeout(idle), WithPrefetch(0)) // readahead off: decode count is pinned
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	ts := httptest.NewServer(cat.Handler())
	defer ts.Close()

	if got := cat.OpenArchives(); got != 0 {
		t.Fatalf("OpenArchives = %d before any request, want 0 (lazy open)", got)
	}
	status, body, _ := fetch(t, ts.Client(), ts.URL+"/v1/archives/m/chunks/0")
	if status != http.StatusOK {
		t.Fatalf("first read: status %d: %s", status, body)
	}
	if got := cat.OpenArchives(); got != 1 {
		t.Fatalf("OpenArchives = %d after request, want 1", got)
	}

	// Not yet idle: a sweep right now closes nothing.
	if n := cat.CloseIdle(time.Now()); n != 0 {
		t.Fatalf("CloseIdle before timeout closed %d archives", n)
	}
	// Past the timeout (simulated clock) the sweep closes it.
	if n := cat.CloseIdle(time.Now().Add(time.Second)); n != 1 {
		t.Fatalf("CloseIdle past timeout closed %d archives, want 1", n)
	}
	if got := cat.OpenArchives(); got != 0 {
		t.Fatalf("OpenArchives = %d after idle close, want 0", got)
	}
	if got := cat.Metrics().Snapshot().Gauge(obs.GaugeCatalogOpenArchives, ""); got != 0 {
		t.Fatalf("%s = %v after idle close, want 0", obs.GaugeCatalogOpenArchives, got)
	}

	// The next request reopens transparently — and decodes again: the new
	// generation gets a fresh cache namespace, so nothing cached before the
	// close can leak into the reopened archive.
	status, _, _ = fetch(t, ts.Client(), ts.URL+"/v1/archives/m/chunks/0")
	if status != http.StatusOK {
		t.Fatalf("post-reopen read: status %d", status)
	}
	if got := cat.OpenArchives(); got != 1 {
		t.Fatalf("OpenArchives = %d after reopen, want 1", got)
	}
	if got := cat.Metrics().Snapshot().Counter(obs.CtrServeDecodes, "m"); got != 2 {
		t.Fatalf("decodes = %d, want 2 (reopen must not serve the stale generation's cache)", got)
	}
}

// TestCatalogAddRemove exercises runtime membership: name validation,
// duplicate rejection, default election, removal with cache purge, and the
// 404 JSON contract for a removed archive.
func TestCatalogAddRemove(t *testing.T) {
	data := buildArchiveBytes(t, 2)
	open := func() (store.Backend, error) { return store.NewMemBackend(data), nil }
	cat, err := NewCatalog(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	for _, bad := range []ArchiveSpec{
		{Name: "", Open: open},
		{Name: "a/b", Open: open},
		{Name: "a#1", Open: open},
		{Name: "ok"}, // no Open
	} {
		if err := cat.Add(bad); err == nil {
			t.Fatalf("Add(%q) accepted an invalid spec", bad.Name)
		}
	}
	if err := cat.Add(ArchiveSpec{Name: "first", Open: open}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(ArchiveSpec{Name: "second", Open: open}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(ArchiveSpec{Name: "first", Open: open}); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if def := cat.DefaultName(); def != "first" {
		t.Fatalf("DefaultName = %q, want %q", def, "first")
	}

	ts := httptest.NewServer(cat.Handler())
	defer ts.Close()

	// The legacy routes alias the default archive.
	status, _, hdr := fetch(t, ts.Client(), ts.URL+"/v1/chunks/0")
	if status != http.StatusOK || hdr.Get("X-Archive-Name") != "first" {
		t.Fatalf("legacy route: status %d archive %q, want 200 from %q", status, hdr.Get("X-Archive-Name"), "first")
	}

	// The listing shows both, flags the default, and tracks openness.
	status, body, _ := fetch(t, ts.Client(), ts.URL+"/v1/archives")
	if status != http.StatusOK {
		t.Fatalf("listing: status %d", status)
	}
	var listing struct {
		Archives []struct {
			Name    string `json:"name"`
			Default bool   `json:"default"`
			Open    bool   `json:"open"`
		} `json:"archives"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("listing not JSON: %v: %s", err, body)
	}
	if len(listing.Archives) != 2 || listing.Archives[0].Name != "first" || !listing.Archives[0].Default ||
		!listing.Archives[0].Open || listing.Archives[1].Open {
		t.Fatalf("listing = %+v", listing)
	}

	if err := cat.Remove("second"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Remove("second"); !errors.Is(err, ErrArchiveNotFound) {
		t.Fatalf("double Remove: %v, want ErrArchiveNotFound", err)
	}
	status, body, hdr = fetch(t, ts.Client(), ts.URL+"/v1/archives/second/chunks/0")
	if status != http.StatusNotFound {
		t.Fatalf("removed archive: status %d, want 404", status)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != "archive_not_found" ||
		hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("removed archive error body %q (Content-Type %q, parse %v)", body, hdr.Get("Content-Type"), err)
	}
	// The survivor still serves; removing the default does not reroute it.
	status, _, _ = fetch(t, ts.Client(), ts.URL+"/v1/archives/first/chunks/0")
	if status != http.StatusOK {
		t.Fatalf("surviving archive: status %d", status)
	}
}

// trackedBackend records whether the catalog has closed it.
type trackedBackend struct {
	store.Backend
	closed atomic.Bool
}

func (b *trackedBackend) Close() error {
	b.closed.Store(true)
	return b.Backend.Close()
}

// TestCatalogRemoveDefersCloseToLastRelease pins Remove's in-flight
// contract: a request that acquired the archive before Remove keeps a
// readable archive (the backend must not close under it); new requests
// answer 404 immediately; and the last release — not Remove — closes the
// backend.
func TestCatalogRemoveDefersCloseToLastRelease(t *testing.T) {
	data := buildArchiveBytes(t, 1)
	tb := &trackedBackend{Backend: store.NewMemBackend(data)}
	cat, err := NewCatalog([]ArchiveSpec{
		{Name: "a", Open: func() (store.Backend, error) { return tb, nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	_, a, _, release, err := cat.acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if tb.closed.Load() {
		t.Fatal("Remove closed the backend with a request still in flight")
	}
	// The in-flight request still reads real bytes through the backend.
	if _, err := a.ReadChunkContext(context.Background(), 0); err != nil {
		t.Fatalf("in-flight read after Remove: %v", err)
	}
	// New requests miss: the tenant is gone even though it is still open.
	if _, _, _, _, err := cat.acquire("a"); !errors.Is(err, ErrArchiveNotFound) {
		t.Fatalf("acquire after Remove: %v, want ErrArchiveNotFound", err)
	}
	release()
	if !tb.closed.Load() {
		t.Fatal("last release did not close the removed archive's backend")
	}
	if got := cat.OpenArchives(); got != 0 {
		t.Fatalf("OpenArchives = %d after deferred close, want 0", got)
	}
}

// TestCatalogRemoveReassignsDefault pins the default-slot lifecycle:
// removing the default archive hands the legacy routes to the smallest
// remaining name, and once the catalog empties, the next Add re-elects.
func TestCatalogRemoveReassignsDefault(t *testing.T) {
	data := buildArchiveBytes(t, 1)
	open := func() (store.Backend, error) { return store.NewMemBackend(data), nil }
	cat, err := NewCatalog([]ArchiveSpec{
		{Name: "b", Open: open}, // first added: the default
		{Name: "c", Open: open},
		{Name: "a", Open: open},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	ts := httptest.NewServer(cat.Handler())
	defer ts.Close()

	if err := cat.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if def := cat.DefaultName(); def != "a" {
		t.Fatalf("DefaultName after removing default = %q, want smallest remaining %q", def, "a")
	}
	status, _, hdr := fetch(t, ts.Client(), ts.URL+"/v1/chunks/0")
	if status != http.StatusOK || hdr.Get("X-Archive-Name") != "a" {
		t.Fatalf("legacy route after default removal: status %d archive %q, want 200 from %q",
			status, hdr.Get("X-Archive-Name"), "a")
	}
	for _, name := range []string{"a", "c"} {
		if err := cat.Remove(name); err != nil {
			t.Fatal(err)
		}
	}
	if def := cat.DefaultName(); def != "" {
		t.Fatalf("DefaultName of empty catalog = %q, want \"\"", def)
	}
	if err := cat.Add(ArchiveSpec{Name: "late", Open: open}); err != nil {
		t.Fatal(err)
	}
	if def := cat.DefaultName(); def != "late" {
		t.Fatalf("Add after emptying did not re-elect a default: %q", def)
	}
	if status, _, hdr := fetch(t, ts.Client(), ts.URL+"/v1/chunks/0"); status != http.StatusOK ||
		hdr.Get("X-Archive-Name") != "late" {
		t.Fatalf("legacy route after re-election: status %d archive %q", status, hdr.Get("X-Archive-Name"))
	}
}

// TestCatalogRecreatedNameGetsFreshCacheSpace pins the stale-bytes guard
// across Remove/Add: generations are catalog-global, so a tenant recreated
// under the same name (a rescan replacing a .vacs file) can never name a
// cache space any earlier open of that name used — a stale load landing
// after Remove's purge repopulates a namespace nobody reads anymore.
func TestCatalogRecreatedNameGetsFreshCacheSpace(t *testing.T) {
	data := buildArchiveBytes(t, 1)
	spec := ArchiveSpec{Name: "n", Open: func() (store.Backend, error) { return store.NewMemBackend(data), nil }}
	cat, err := NewCatalog([]ArchiveSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	_, _, space1, release, err := cat.acquire("n")
	if err != nil {
		t.Fatal(err)
	}
	release()
	if err := cat.Remove("n"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(spec); err != nil {
		t.Fatal(err)
	}
	_, _, space2, release, err := cat.acquire("n")
	if err != nil {
		t.Fatal(err)
	}
	release()
	if space1 == space2 {
		t.Fatalf("recreated tenant reuses cache space %q of the removed one", space1)
	}
}

// TestCatalogListingRacesLifecycle is the lock-order regression canary:
// GET /v1/archives reads tenant open-state while chunk requests lazily
// open archives, the idle sweeper closes them, and membership churns via
// Add/Remove. With the old ordering (handleArchives nesting t.mu inside
// c.mu while open/close bookkeeping took c.mu under t.mu) this deadlocked;
// now it must drain. Run with -race for the full effect.
func TestCatalogListingRacesLifecycle(t *testing.T) {
	data := buildArchiveBytes(t, 1)
	open := func() (store.Backend, error) { return store.NewMemBackend(data), nil }
	cat, err := NewCatalog([]ArchiveSpec{
		{Name: "a", Open: open},
		{Name: "b", Open: open},
	}, WithIdleTimeout(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	ts := httptest.NewServer(cat.Handler())
	defer ts.Close()

	// Drain responses without t.Fatal: these run off the test goroutine,
	// and the property under test is only "nothing wedges".
	get := func(url string) {
		resp, err := ts.Client().Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	const iters = 60
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch w {
				case 0:
					get(ts.URL + "/v1/archives")
				case 1:
					get(fmt.Sprintf("%s/v1/archives/%s/chunks/0", ts.URL, []string{"a", "b"}[i%2]))
				case 2:
					cat.CloseIdle(time.Now().Add(time.Hour))
				case 3:
					name := fmt.Sprintf("churn%d", i%3)
					if err := cat.Add(ArchiveSpec{Name: name, Open: open}); err == nil {
						cat.Remove(name)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCatalogOpenFailure pins the unreachable-medium contract: a spec whose
// Open fails answers 503 + Retry-After with code "read_failed" (the device,
// not the data), the catalog keeps serving its healthy archives, and the
// failed tenant recovers on the next request once its medium returns.
func TestCatalogOpenFailure(t *testing.T) {
	data := buildArchiveBytes(t, 2)
	var down atomic.Bool
	down.Store(true)
	cat, err := NewCatalog([]ArchiveSpec{
		{Name: "ok", Open: func() (store.Backend, error) { return store.NewMemBackend(data), nil }},
		{Name: "detached", Open: func() (store.Backend, error) {
			if down.Load() {
				return nil, errors.New("medium offline")
			}
			return store.NewMemBackend(data), nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	ts := httptest.NewServer(cat.Handler())
	defer ts.Close()

	status, body, hdr := fetch(t, ts.Client(), ts.URL+"/v1/archives/detached/chunks/0")
	if status != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("detached archive: status %d retry-after %q, want 503 with hint", status, hdr.Get("Retry-After"))
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != "read_failed" {
		t.Fatalf("detached archive error body %q (parse %v)", body, err)
	}
	// Healthy tenants are unaffected.
	if status, _, _ := fetch(t, ts.Client(), ts.URL+"/v1/archives/ok/chunks/0"); status != http.StatusOK {
		t.Fatalf("healthy archive: status %d", status)
	}
	// The medium comes back; the next request opens it.
	down.Store(false)
	if status, _, _ := fetch(t, ts.Client(), ts.URL+"/v1/archives/detached/chunks/0"); status != http.StatusOK {
		t.Fatalf("recovered archive: status %d", status)
	}
	if got := cat.OpenArchives(); got != 2 {
		t.Fatalf("OpenArchives = %d, want 2", got)
	}
}
