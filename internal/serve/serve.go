// Package serve is the concurrent read path of the archive layer: an HTTP
// chunk server that ships decoded chunk frames, per-chunk metadata and the
// archive index from a VACS container to many simultaneous clients.
//
// The paper's premise is that approximately stored video is read far more
// often than it is written, so the serving layer is built around three
// read-side mechanisms:
//
//   - the archive is accessed through io.ReaderAt (store.OpenChunkArchiveAt),
//     so concurrent chunk reads share no cursor and take no lock;
//   - decoded chunks are rendered once into a cost-bounded LRU cache
//     (internal/cache), sized in bytes of rendered y4m output;
//   - cold-chunk decodes are coalesced (singleflight): a stampede of N
//     clients on one uncached chunk performs a single archive read + decode
//     and every client shares the bytes.
//
// Every request runs under a context with the configured timeout and is
// cancelled when the client hangs up; the decode path checks the context
// at frame boundaries. The server publishes its own observability through
// internal/obs (request counts, cache hit rate, decode latency,
// in-flight gauge) and renders a snapshot on /metrics. Shutdown drains
// in-flight connections before returning.
//
// # Fault tolerance
//
// The server rides the store layer's fault-tolerant read path and adds two
// availability mechanisms of its own:
//
//   - graceful degradation: when a chunk's approximate streams fail
//     verification after the policy's retries (and the mirror, when one is
//     configured), the server ships the precise-class reconstruction —
//     damaged streams zero-filled — instead of an error. Such responses
//     carry the X-Videoapp-Degraded header naming the lost schemes and are
//     counted in serve_chunk_degraded. Only damage to the precisely-stored
//     region is a hard failure, and even that answers 503 + Retry-After
//     (scrubbing can repair it), never a 5xx dead end.
//   - a circuit breaker: consecutive hard read failures (ErrReadFailed —
//     the device, not the data) open the breaker for the policy's cooldown,
//     during which chunk requests are shed immediately with 503 +
//     Retry-After instead of hammering a failing device. Shed requests are
//     counted in serve_breaker_shed and the serve_breaker_open gauge is 1
//     while shedding. Any successful read closes the breaker.
//
// # Endpoints
//
//	GET /healthz                 liveness probe, "ok"
//	GET /v1/archive              archive index: meta + per-chunk records (JSON)
//	GET /v1/chunks/{index}       decoded chunk frames as YUV4MPEG2
//	GET /v1/chunks/{index}/meta  one chunk's record (JSON)
//	GET /metrics                 obs snapshot (text; ?format=json for JSON)
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"videoapp/internal/cache"
	"videoapp/internal/codec"
	"videoapp/internal/obs"
	"videoapp/internal/store"
	"videoapp/internal/y4m"
)

// Options is the server's resolved configuration. Construct servers with
// New and the With* functional options; Options survives as a plain struct
// so the one-release compatibility shim (the root package's
// WithServeOptions) and tests can state a whole configuration at once.
type Options struct {
	// CacheBytes bounds the decoded-chunk cache by rendered output size;
	// <= 0 selects 64 MiB. The cache holds y4m-rendered chunks, so one
	// entry costs roughly frames × 1.5 × W × H bytes.
	CacheBytes int64
	// Workers bounds the decoder's frame parallelism per cold chunk;
	// <= 0 selects GOMAXPROCS.
	Workers int
	// RequestTimeout bounds one request end to end, decode included;
	// <= 0 selects 30 seconds. Expired requests answer 503.
	RequestTimeout time.Duration
	// DrainTimeout bounds connection draining during Shutdown; <= 0
	// selects 10 seconds.
	DrainTimeout time.Duration
	// Observer, when non-nil, receives the serve-layer events alongside
	// the server's own metrics aggregator.
	Observer obs.Observer
	// FaultPolicy tunes the read path's retries and the circuit breaker.
	// It only takes effect through WithFaultPolicy (or a WithOptions shim
	// carrying a non-zero policy), which also threads it under every
	// archive read of this server, overriding the archive's own policy.
	FaultPolicy store.FaultPolicy
}

// withDefaults resolves zero fields to their documented defaults.
func (o Options) withDefaults() Options {
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	return o
}

// config is the mutable state the functional options assemble.
type config struct {
	opts      Options
	policySet bool
}

// Option configures a Server at construction, applied in argument order.
type Option func(*config)

// WithCacheBytes bounds the decoded-chunk cache by rendered output size;
// <= 0 selects the 64 MiB default.
func WithCacheBytes(n int64) Option {
	return func(c *config) { c.opts.CacheBytes = n }
}

// WithWorkers bounds the decoder's frame parallelism per cold chunk;
// <= 0 selects GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *config) { c.opts.Workers = n }
}

// WithRequestTimeout bounds one request end to end, decode included;
// <= 0 selects 30 seconds.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) { c.opts.RequestTimeout = d }
}

// WithDrainTimeout bounds connection draining during shutdown; <= 0
// selects 10 seconds.
func WithDrainTimeout(d time.Duration) Option {
	return func(c *config) { c.opts.DrainTimeout = d }
}

// WithObserver attaches an observer that receives the serve-layer events
// alongside the server's own metrics aggregator.
func WithObserver(o obs.Observer) Option {
	return func(c *config) { c.opts.Observer = o }
}

// WithFaultPolicy sets the fault policy the server reads under: retry
// count and backoff for archive reads, checksum verification, and the
// circuit breaker's threshold and cooldown. The policy is threaded through
// the request context, so it overrides the archive's own policy for reads
// this server issues.
func WithFaultPolicy(p store.FaultPolicy) Option {
	return func(c *config) {
		c.opts.FaultPolicy = p
		c.policySet = true
	}
}

// WithOptions applies a whole Options struct at once — the compatibility
// bridge for code written against the previous struct-configured
// constructor. A non-zero FaultPolicy field behaves as WithFaultPolicy.
func WithOptions(o Options) Option {
	return func(c *config) {
		set := c.policySet || o.FaultPolicy != (store.FaultPolicy{})
		c.opts = o
		c.policySet = set
	}
}

// Server serves one archive to many concurrent clients. Construct with New;
// all methods are safe for concurrent use.
type Server struct {
	archive   *store.ChunkArchive
	opts      Options
	policySet bool
	cache     *cache.Cache[int, chunkPayload]
	metrics   *obs.Metrics
	observer  obs.Observer
	inFlight  atomic.Int64
	breaker   breaker
	mux       *http.ServeMux
}

// chunkPayload is one cached chunk response: the rendered y4m bytes plus
// the degradation verdict of the read that produced them, so cache hits
// replay the same X-Videoapp-Degraded header as the original response.
type chunkPayload struct {
	data     []byte
	degraded []string
}

// New returns a server over an opened archive. The archive must outlive the
// server; the server never closes it.
func New(a *store.ChunkArchive, options ...Option) *Server {
	var c config
	for _, o := range options {
		o(&c)
	}
	opts := c.opts.withDefaults()
	pol := opts.FaultPolicy.Resolved()
	s := &Server{
		archive:   a,
		opts:      opts,
		policySet: c.policySet,
		cache: cache.New[int, chunkPayload](opts.CacheBytes, func(p chunkPayload) int64 {
			return int64(len(p.data))
		}),
		metrics: obs.NewMetrics(),
		breaker: breaker{threshold: pol.BreakerThreshold, cooldown: pol.BreakerCooldown},
	}
	s.observer = obs.Multi(s.metrics, opts.Observer)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /v1/archive", s.route("archive", s.handleArchive))
	s.mux.HandleFunc("GET /v1/chunks/{index}", s.route("chunk", s.handleChunk))
	s.mux.HandleFunc("GET /v1/chunks/{index}/meta", s.route("chunk_meta", s.handleChunkMeta))
	s.mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	return s
}

// Handler returns the server's routing handler, for mounting under a custom
// http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's metrics aggregator.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// CacheStats returns the decoded-chunk cache counters; Stats.Loads is the
// number of actual decode executions (the singleflight counter).
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// statusWriter records the status code written to a response.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// route wraps a handler with the per-request machinery: the in-flight
// gauge, request/error counters, and the request timeout. The request
// context is also cancelled by the client hanging up, which the decode
// path observes at frame boundaries.
func (s *Server) route(name string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.observer.Gauge(obs.GaugeServeInFlight, "", float64(s.inFlight.Add(1)))
		defer func() {
			s.observer.Gauge(obs.GaugeServeInFlight, "", float64(s.inFlight.Add(-1)))
		}()
		s.observer.Counter(obs.CtrServeRequests, name, 1)

		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if err := h(sw, r.WithContext(ctx)); err != nil {
			s.writeError(sw, err)
		}
		if sw.status >= 400 {
			s.observer.Counter(obs.CtrServeErrors, name, 1)
		}
	}
}

// writeError maps the archive layer's typed errors and context outcomes to
// HTTP statuses. Unreadable data never dead-ends in a 500: corruption is
// repairable (scrub, mirror) and device failure is transient by
// definition, so both answer 503 with a Retry-After hint.
func (s *Server) writeError(w *statusWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, store.ErrChunkNotFound):
		status = http.StatusNotFound
	case errors.Is(err, store.ErrArchiveClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, store.ErrCorruptRecord), errors.Is(err, store.ErrReadFailed):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.breaker.retryAfterSeconds()))
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		// The client hung up; nothing useful can be written.
		return
	}
	http.Error(w, err.Error(), status)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, err := fmt.Fprintln(w, "ok")
	return err
}

// archiveIndex is the JSON shape of GET /v1/archive.
type archiveIndex struct {
	Meta        store.ArchiveMeta `json:"meta"`
	Chunks      int               `json:"chunks"`
	TotalFrames int               `json:"total_frames"`
	Index       []store.ChunkInfo `json:"index"`
}

func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) error {
	idx := archiveIndex{
		Meta:        s.archive.Meta(),
		Chunks:      s.archive.NumChunks(),
		TotalFrames: s.archive.TotalFrames(),
	}
	idx.Index = make([]store.ChunkInfo, idx.Chunks)
	for i := range idx.Index {
		info, err := s.archive.Info(i)
		if err != nil {
			return err
		}
		idx.Index[i] = info
	}
	return writeJSON(w, idx)
}

func (s *Server) handleChunkMeta(w http.ResponseWriter, r *http.Request) error {
	i, err := chunkIndex(r)
	if err != nil {
		return err
	}
	info, err := s.archive.Info(i)
	if err != nil {
		return err
	}
	return writeJSON(w, info)
}

// handleChunk answers with the decoded frames of one chunk as a YUV4MPEG2
// stream, from cache when hot. Cold chunks are materialized once per
// stampede via the cache's singleflight and then shared. The open circuit
// breaker sheds the request before any archive or cache work; a response
// built from a degraded read (some approximate streams zero-filled)
// carries the X-Videoapp-Degraded header, on cache hits too.
func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) error {
	i, err := chunkIndex(r)
	if err != nil {
		return err
	}
	if !s.breaker.allow(time.Now()) {
		s.observer.Counter(obs.CtrServeShed, "", 1)
		w.Header().Set("Retry-After", strconv.Itoa(s.breaker.retryAfterSeconds()))
		http.Error(w, "chunk read path unavailable (circuit breaker open)", http.StatusServiceUnavailable)
		return nil
	}
	if _, err := s.archive.Info(i); err != nil {
		return err // 404 before paying a flight for an absent chunk
	}
	if _, hit := s.cache.Get(i); hit {
		s.observer.Counter(obs.CtrServeCacheHits, "", 1)
	} else {
		s.observer.Counter(obs.CtrServeCacheMisses, "", 1)
	}
	p, err := s.cache.GetOrLoad(r.Context(), i, func(ctx context.Context) (chunkPayload, error) {
		return s.materialize(ctx, i)
	})
	if err != nil {
		if errors.Is(err, store.ErrReadFailed) && s.breaker.failure(time.Now()) {
			s.observer.Gauge(obs.GaugeServeBreakerOpen, "", 1)
		}
		return err
	}
	if s.breaker.success() {
		// A success (possibly a probe after the cooldown) closes the
		// breaker; refresh the gauge only on the transition.
		s.observer.Gauge(obs.GaugeServeBreakerOpen, "", 0)
	}
	s.publishCacheGauges()
	w.Header().Set("Content-Type", "video/x-yuv4mpeg")
	w.Header().Set("Content-Length", strconv.Itoa(len(p.data)))
	w.Header().Set("X-Chunk-Index", strconv.Itoa(i))
	if len(p.degraded) > 0 {
		w.Header().Set("X-Videoapp-Degraded", strings.Join(p.degraded, ","))
		s.observer.Counter(obs.CtrServeDegraded, "", 1)
	}
	_, err = w.Write(p.data)
	return err
}

// materialize is the cold-chunk path: read the chunk's bytes from the
// archive under the server's fault policy, decode them, and render the
// frames as y4m. It runs at most once per chunk under stampede (cache
// singleflight) and publishes the decode span and counter. A degraded read
// is a success here — the verdict rides the payload into the cache so
// every response built from it is flagged.
func (s *Server) materialize(ctx context.Context, i int) (chunkPayload, error) {
	sp := obs.StartSpan(s.observer, obs.StageServeChunk)
	defer sp.End()
	s.observer.Counter(obs.CtrServeDecodes, "", 1)
	ctx = obs.With(ctx, s.observer)
	if s.policySet {
		ctx = store.ContextWithFaultPolicy(ctx, s.opts.FaultPolicy)
	}
	cr, err := s.archive.ReadChunkContext(ctx, i)
	if err != nil {
		return chunkPayload{}, err
	}
	seq, err := codec.DecodeContext(ctx, cr.Video, codec.DecodeOptions{}, s.opts.Workers)
	if err != nil {
		return chunkPayload{}, err
	}
	var buf bytes.Buffer
	buf.Grow(seqSize(len(seq.Frames), cr.Video.W, cr.Video.H))
	if err := y4m.Write(&buf, seq); err != nil {
		return chunkPayload{}, err
	}
	return chunkPayload{data: buf.Bytes(), degraded: cr.Degraded}, nil
}

// seqSize estimates the rendered y4m size of frames 4:2:0 pictures, for
// pre-sizing the render buffer.
func seqSize(frames, w, h int) int {
	return frames*(w*h*3/2+8) + 128
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	s.publishCacheGauges()
	snap := s.metrics.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		return writeJSON(w, snap)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	return snap.WriteText(w)
}

// publishCacheGauges refreshes the cache-derived gauges from the cache's
// own counters.
func (s *Server) publishCacheGauges() {
	cs := s.cache.Stats()
	s.observer.Gauge(obs.GaugeServeCacheHitRate, "", cs.HitRate())
	s.observer.Gauge(obs.GaugeServeCacheBytes, "", float64(cs.Cost))
}

// chunkIndex parses the {index} path value; malformed or out-of-range
// values surface as ErrChunkNotFound so they answer 404.
func chunkIndex(r *http.Request) (int, error) {
	i, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		return 0, fmt.Errorf("%w: bad chunk index %q", store.ErrChunkNotFound, r.PathValue("index"))
	}
	return i, nil
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// Serve accepts connections on l until ctx is cancelled, then shuts down
// gracefully: the listener closes, idle connections drop, and in-flight
// requests get DrainTimeout to finish before the server gives up. It
// returns nil on a clean drained shutdown.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return context.WithoutCancel(ctx) },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drain, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drain)
	if serr := <-errc; serr != nil && serr != http.ErrServerClosed && err == nil {
		err = serr
	}
	return err
}

// ListenAndServe binds addr and calls Serve. To learn the bound address of
// an ephemeral ":0" listen, bind a net.Listener yourself and call Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}
