// Package serve is the concurrent read path of the archive layer: an HTTP
// chunk server that ships decoded chunk frames, per-chunk metadata and
// archive indexes from VACS containers to many simultaneous clients.
//
// The paper's premise is that approximately stored video is read far more
// often than it is written, so the serving layer is built around three
// read-side mechanisms:
//
//   - archives are accessed through the store.Backend seam
//     (store.OpenArchiveBackend), so concurrent chunk reads share no cursor
//     and take no lock, and any storage medium — file, memory region,
//     sealed snapshot, or a faultio-decorated composition — serves the
//     same way;
//   - decoded chunks are rendered once into a cost-bounded LRU cache
//     (internal/cache), sized in bytes of rendered y4m output and shared
//     across every archive of a catalog. The cache is lock-sharded
//     (WithCacheShards): keys hash to independent shards, each with its
//     own mutex, LRU order, and slice of the byte budget, so hot hits on
//     different chunks never contend on one mutex;
//   - cold-chunk decodes are coalesced (singleflight): a stampede of N
//     clients on one uncached chunk performs a single archive read + decode
//     and every client shares the bytes;
//   - a sequential readahead prefetcher (WithPrefetch) rides the access
//     pattern video playback produces: a request for chunk i warms chunks
//     i+1..i+k in the background through the same singleflight cache
//     namespace, so steady sequential readers find the next chunk already
//     decoded. Prefetch never fires through an open circuit breaker or on
//     a removed archive, and its issued/useful/wasted counters are
//     published through obs.
//
// # Multi-archive catalogs
//
// A Catalog serves N named archives from one process — the multi-tenant
// storage node of the datacenter deployment the paper argues for (§1, §7).
// Tenants are declared as ArchiveSpecs and opened lazily on first request;
// an idle timeout closes archives nobody is reading (the static archive of
// a single-tenant Server is never closed). Each tenant gets its own
// circuit breaker and fault policy, and its own labeled counters, while
// the decoded-chunk cache is shared. A Server is the single-archive
// special case: a catalog with one statically attached tenant named
// "default".
//
// Every request runs under a context with the configured timeout and is
// cancelled when the client hangs up; the decode path checks the context
// at frame boundaries. The server publishes its own observability through
// internal/obs (request counts, cache hit rate, decode latency, in-flight
// gauge, open-archive gauge, per-archive chunk counters) and renders a
// snapshot on /metrics. Shutdown drains in-flight connections before
// returning. Errors are JSON objects: {"error": ..., "code": ...}.
//
// # Fault tolerance
//
// The server rides the store layer's fault-tolerant read path and adds two
// availability mechanisms of its own:
//
//   - graceful degradation: when a chunk's approximate streams fail
//     verification after the policy's retries (and the mirror, when one is
//     configured), the server ships the precise-class reconstruction —
//     damaged streams zero-filled — instead of an error. Such responses
//     carry the X-Videoapp-Degraded header naming the lost schemes and are
//     counted in serve_chunk_degraded. Only damage to the precisely-stored
//     region is a hard failure, and even that answers 503 + Retry-After
//     (scrubbing can repair it), never a 5xx dead end.
//   - per-archive circuit breakers: consecutive hard read failures
//     (ErrReadFailed — the device, not the data) open that archive's
//     breaker for the policy's cooldown, during which its chunk requests
//     are shed immediately with 503 + Retry-After instead of hammering a
//     failing device. Shed requests are counted in serve_breaker_shed and
//     the serve_breaker_open gauge is 1 while shedding; other archives of
//     the catalog are unaffected. Any successful read closes the breaker.
//
// # Endpoints
//
//	GET /healthz                                  liveness probe, "ok"
//	GET /v1/archives                              catalog listing (JSON)
//	GET /v1/archives/{name}                       archive index: meta + per-chunk records (JSON)
//	GET /v1/archives/{name}/chunks/{index}        decoded chunk frames as YUV4MPEG2
//	GET /v1/archives/{name}/chunks/{index}/meta   one chunk's record (JSON)
//	GET /metrics                                  obs snapshot (text; ?format=json for JSON)
//
// The v1 single-archive routes remain as aliases of the default archive:
//
//	GET /v1/archive              = /v1/archives/{default}
//	GET /v1/chunks/{index}       = /v1/archives/{default}/chunks/{index}
//	GET /v1/chunks/{index}/meta  = /v1/archives/{default}/chunks/{index}/meta
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"videoapp/internal/cache"
	"videoapp/internal/obs"
	"videoapp/internal/store"
)

// ErrArchiveNotFound reports a request for a catalog archive name that is
// not (or no longer) in the catalog. Match with errors.Is; over HTTP it is
// a 404 with code "archive_not_found".
var ErrArchiveNotFound = errors.New("archive not found")

// Options is the server's resolved configuration. Construct servers with
// New (or catalogs with NewCatalog) and the With* functional options;
// Options survives as a plain struct so tests can state a whole
// configuration at once.
type Options struct {
	// CacheBytes bounds the decoded-chunk cache by rendered output size;
	// <= 0 selects 64 MiB. The cache holds y4m-rendered chunks, so one
	// entry costs roughly frames × 1.5 × W × H bytes. A catalog's cache is
	// shared across all of its archives.
	CacheBytes int64
	// CacheShards is the decoded-chunk cache's lock-shard count, rounded up
	// to a power of two. 0 selects cache.DefaultShards() (max(8, GOMAXPROCS)
	// rounded up); negative forces a single shard — one global mutex and a
	// strict global LRU order, the pre-sharding behavior.
	CacheShards int
	// PrefetchDepth is how many chunks past a requested index the readahead
	// prefetcher warms (i+1..i+depth) through the shared cache. 0 selects
	// the default of 2; negative disables prefetching.
	PrefetchDepth int
	// Workers bounds the decoder's frame parallelism per cold chunk;
	// <= 0 selects GOMAXPROCS.
	Workers int
	// RequestTimeout bounds one request end to end, decode included;
	// <= 0 selects 30 seconds. Expired requests answer 503.
	RequestTimeout time.Duration
	// DrainTimeout bounds connection draining during Shutdown; <= 0
	// selects 10 seconds.
	DrainTimeout time.Duration
	// IdleTimeout closes a lazily-opened catalog archive after it has gone
	// unused this long; <= 0 keeps archives open forever. Statically
	// attached archives (Server's, Catalog entries added with a pre-opened
	// archive) are never idle-closed. The next request reopens the archive
	// transparently.
	IdleTimeout time.Duration
	// Observer, when non-nil, receives the serve-layer events alongside
	// the server's own metrics aggregator.
	Observer obs.Observer
	// FaultPolicy tunes the read path's retries and the circuit breaker
	// for every archive that does not carry its own ArchiveSpec.FaultPolicy.
	// It only takes effect through WithFaultPolicy, which also threads it
	// under every archive read of this server, overriding the archive's
	// own policy.
	FaultPolicy store.FaultPolicy
}

// withDefaults resolves zero fields to their documented defaults.
func (o Options) withDefaults() Options {
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.CacheShards == 0 {
		o.CacheShards = cache.DefaultShards()
	} else if o.CacheShards < 0 {
		o.CacheShards = 1
	}
	if o.PrefetchDepth == 0 {
		o.PrefetchDepth = 2
	} else if o.PrefetchDepth < 0 {
		o.PrefetchDepth = 0 // resolved: 0 means off from here on
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	return o
}

// config is the mutable state the functional options assemble.
type config struct {
	opts      Options
	policySet bool
}

// Option configures a Server or Catalog at construction, applied in
// argument order.
type Option func(*config)

// WithCacheBytes bounds the decoded-chunk cache by rendered output size;
// <= 0 selects the 64 MiB default.
func WithCacheBytes(n int64) Option {
	return func(c *config) { c.opts.CacheBytes = n }
}

// WithCacheShards sets the decoded-chunk cache's lock-shard count (rounded
// up to a power of two). 0 (the default) selects max(8, GOMAXPROCS)
// rounded up to a power of two; pass a negative value — or 1 — for a
// single shard, which restores one global mutex and a strict global LRU
// order at the cost of hot-path contention.
func WithCacheShards(n int) Option {
	return func(c *config) {
		if n == 0 {
			n = -1 // explicit 0 from callers means "one shard", not "auto"
		}
		c.opts.CacheShards = n
	}
}

// WithPrefetch sets the sequential readahead depth: a request for chunk i
// asynchronously warms chunks i+1..i+depth through the shared cache.
// <= 0 disables prefetching; the default depth is 2.
func WithPrefetch(depth int) Option {
	return func(c *config) {
		if depth <= 0 {
			depth = -1 // resolved to "off" by withDefaults
		}
		c.opts.PrefetchDepth = depth
	}
}

// WithWorkers bounds the decoder's frame parallelism per cold chunk;
// <= 0 selects GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *config) { c.opts.Workers = n }
}

// WithRequestTimeout bounds one request end to end, decode included;
// <= 0 selects 30 seconds.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) { c.opts.RequestTimeout = d }
}

// WithDrainTimeout bounds connection draining during shutdown; <= 0
// selects 10 seconds.
func WithDrainTimeout(d time.Duration) Option {
	return func(c *config) { c.opts.DrainTimeout = d }
}

// WithIdleTimeout closes lazily-opened catalog archives that have gone
// unused this long; <= 0 (the default) keeps them open forever.
func WithIdleTimeout(d time.Duration) Option {
	return func(c *config) { c.opts.IdleTimeout = d }
}

// WithObserver attaches an observer that receives the serve-layer events
// alongside the server's own metrics aggregator.
func WithObserver(o obs.Observer) Option {
	return func(c *config) { c.opts.Observer = o }
}

// WithFaultPolicy sets the fault policy the server reads under: retry
// count and backoff for archive reads, checksum verification, and the
// circuit breaker's threshold and cooldown. The policy is threaded through
// the request context, so it overrides the archive's own policy for reads
// this server issues. A per-archive ArchiveSpec.FaultPolicy overrides it
// for that archive.
func WithFaultPolicy(p store.FaultPolicy) Option {
	return func(c *config) {
		c.opts.FaultPolicy = p
		c.policySet = true
	}
}

// Server serves one archive to many concurrent clients: the single-tenant
// special case of a Catalog, its archive statically attached under the
// name "default" and every catalog route available. Construct with New;
// all methods are safe for concurrent use.
type Server struct {
	cat *Catalog
}

// New returns a server over an opened archive. The archive must outlive the
// server; the server never closes it.
func New(a *store.ChunkArchive, options ...Option) *Server {
	cat := newCatalog(options)
	cat.attach(DefaultArchiveName, a)
	return &Server{cat: cat}
}

// Catalog returns the underlying single-entry catalog, for attaching more
// archives to a server that started single-tenant.
func (s *Server) Catalog() *Catalog { return s.cat }

// Handler returns the server's routing handler, for mounting under a custom
// http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.cat.Handler() }

// Metrics returns the server's metrics aggregator.
func (s *Server) Metrics() *obs.Metrics { return s.cat.Metrics() }

// CacheStats returns the decoded-chunk cache counters; Stats.Loads is the
// number of actual decode executions (the singleflight counter).
func (s *Server) CacheStats() cache.Stats { return s.cat.CacheStats() }

// Serve accepts connections on l until ctx is cancelled, then shuts down
// gracefully; see Catalog.Serve.
func (s *Server) Serve(ctx context.Context, l net.Listener) error { return s.cat.Serve(ctx, l) }

// ListenAndServe binds addr and calls Serve; see Catalog.ListenAndServe.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	return s.cat.ListenAndServe(ctx, addr)
}

// statusWriter records the status code written to a response.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// errorBody is the JSON shape of every error response.
type errorBody struct {
	// Error is the human-readable message.
	Error string `json:"error"`
	// Code is the stable machine-readable error class.
	Code string `json:"code"`
}

// writeJSONError emits one JSON error object with the given status.
func writeJSONError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg, Code: code})
}

// retryAfterError decorates a read-path error with the owning archive's
// breaker cooldown, so writeError can emit a tenant-accurate Retry-After.
type retryAfterError struct {
	err     error
	seconds int
}

func (e retryAfterError) Error() string { return e.err.Error() }
func (e retryAfterError) Unwrap() error { return e.err }

// writeError maps the archive layer's typed errors and context outcomes to
// HTTP statuses with JSON bodies. Unreadable data never dead-ends in a 500:
// corruption is repairable (scrub, mirror) and device failure is transient
// by definition, so both answer 503 with a Retry-After hint.
func writeError(w *statusWriter, err error) {
	status := http.StatusInternalServerError
	code := "internal"
	retryAfter := 0
	switch {
	case errors.Is(err, store.ErrChunkNotFound):
		status, code = http.StatusNotFound, "chunk_not_found"
	case errors.Is(err, ErrArchiveNotFound):
		status, code = http.StatusNotFound, "archive_not_found"
	case errors.Is(err, store.ErrArchiveClosed):
		status, code = http.StatusServiceUnavailable, "archive_closed"
	case errors.Is(err, store.ErrCorruptRecord):
		status, code = http.StatusServiceUnavailable, "corrupt_record"
		retryAfter = retryAfterSecondsOf(err)
	case errors.Is(err, store.ErrReadFailed):
		status, code = http.StatusServiceUnavailable, "read_failed"
		retryAfter = retryAfterSecondsOf(err)
	case errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusServiceUnavailable, "timeout"
	case errors.Is(err, context.Canceled):
		// The client hung up; nothing useful can be written.
		return
	}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	writeJSONError(w, status, code, err.Error())
}

// retryAfterSecondsOf extracts the tenant breaker's cooldown hint riding
// err, defaulting to 1 second when none is attached.
func retryAfterSecondsOf(err error) int {
	var ra retryAfterError
	if errors.As(err, &ra) && ra.seconds > 0 {
		return ra.seconds
	}
	return 1
}

// chunkIndex parses the {index} path value; malformed or out-of-range
// values surface as ErrChunkNotFound so they answer 404.
func chunkIndex(r *http.Request) (int, error) {
	i, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		return 0, fmt.Errorf("%w: bad chunk index %q", store.ErrChunkNotFound, r.PathValue("index"))
	}
	return i, nil
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// seqSize estimates the rendered y4m size of frames 4:2:0 pictures, for
// pre-sizing the render buffer.
func seqSize(frames, w, h int) int {
	return frames*(w*h*3/2+8) + 128
}
