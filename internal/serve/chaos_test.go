package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"videoapp/internal/faultio"
	"videoapp/internal/obs"
	"videoapp/internal/store"
)

// chaosPolicy is the fault policy every chaos-path test runs under: enough
// retries to ride out back-to-back transient draws, negligible backoff so
// the suite stays fast.
func chaosPolicy() store.FaultPolicy {
	return store.FaultPolicy{
		MaxRetries:   3,
		RetryBackoff: time.Microsecond,
		MaxBackoff:   50 * time.Microsecond,
	}
}

// chaosProfile is the acceptance fault mix: 1% transient errors, 0.1%
// persistent corruption per read.
func chaosProfile(seed int64) faultio.Profile {
	return faultio.Profile{Seed: seed, TransientRate: 0.01, CorruptRate: 0.001}
}

// chaosReplay runs one deterministic single-threaded pass over every chunk
// of data through a fresh faultio reader with the given seed: it returns
// the per-chunk degraded schemes (nil entry = clean read), whether every
// chunk was readable (possibly degraded), and the canonical fault log.
func chaosReplay(t *testing.T, data []byte, seed int64) ([][]string, bool, []string) {
	t.Helper()
	fr := faultio.New(bytes.NewReader(data), chaosProfile(seed))
	a, err := store.OpenChunkArchiveAt(fr, store.WithFaultPolicy(chaosPolicy()))
	if err != nil {
		return nil, false, nil
	}
	degraded := make([][]string, a.NumChunks())
	ok := true
	for i := 0; i < a.NumChunks(); i++ {
		cr, err := a.ReadChunkContext(context.Background(), i)
		if err != nil {
			ok = false
			continue
		}
		degraded[i] = cr.Degraded
	}
	var log []string
	for _, f := range fr.Faults() {
		log = append(log, f.String())
	}
	return degraded, ok, log
}

// findChaosSeed deterministically scans seeds for the acceptance scenario:
// the archive opens and every chunk reads successfully under the fault
// profile, with at least one chunk degraded and at least one clean. The
// scan itself is reproducible, so the whole suite is seed-stable without a
// hardcoded magic number going stale when the container layout changes.
func findChaosSeed(t *testing.T, data []byte) int64 {
	t.Helper()
	for seed := int64(1); seed <= 4096; seed++ {
		degraded, ok, _ := chaosReplay(t, data, seed)
		if !ok {
			continue
		}
		nDeg := 0
		for _, d := range degraded {
			if len(d) > 0 {
				nDeg++
			}
		}
		if nDeg >= 1 && nDeg < len(degraded) {
			return seed
		}
	}
	t.Fatal("no seed in 1..4096 produces the degraded+clean mix; retune the profile")
	return 0
}

// TestChaosServe is the acceptance chaos test: a chunk server over a
// deterministically faulty device (1% transient, 0.1% corrupt) takes 1024
// requests from 32 concurrent clients and (a) never answers a 5xx other
// than 503, (b) flags every degraded response with the X-Videoapp-Degraded
// header and counts it in serve_chunk_degraded, and (c) the fault sequence
// is reproducible: two sequential replays over the same seed yield
// identical fault logs and degradation verdicts — asserted on top of the
// concurrent run.
func TestChaosServe(t *testing.T) {
	data := buildArchiveBytes(t, 6)
	seed := findChaosSeed(t, data)

	// Determinism, asserted twice: replay the same seed sequentially and
	// require identical fault logs and identical per-chunk verdicts.
	deg1, ok1, log1 := chaosReplay(t, data, seed)
	deg2, ok2, log2 := chaosReplay(t, data, seed)
	if !ok1 || !ok2 {
		t.Fatal("seed vetted by findChaosSeed must read every chunk")
	}
	if len(log1) == 0 {
		t.Fatal("chaos profile injected no faults")
	}
	if fmt.Sprint(log1) != fmt.Sprint(log2) {
		t.Fatalf("fault logs differ between identical-seed replays:\n%v\n%v", log1, log2)
	}
	if fmt.Sprint(deg1) != fmt.Sprint(deg2) {
		t.Fatalf("degradation verdicts differ between identical-seed replays:\n%v\n%v", deg1, deg2)
	}

	// The concurrent run: one shared faulty device under the server.
	fr := faultio.New(bytes.NewReader(data), chaosProfile(seed))
	a, err := store.OpenChunkArchiveAt(fr, store.WithFaultPolicy(chaosPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	s := New(a, WithFaultPolicy(chaosPolicy()))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 32
	const perClient = 32 // 1024 requests total
	var wg sync.WaitGroup
	var degradedResponses, served atomic.Int64
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for r := 0; r < perClient; r++ {
				i := (c*perClient + r) % a.NumChunks()
				resp, err := client.Get(fmt.Sprintf("%s/v1/chunks/%d", ts.URL, i))
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %w", c, r, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: reading body: %w", c, r, err)
					return
				}
				served.Add(1)
				if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
					errs <- fmt.Errorf("client %d req %d chunk %d: status %d (only 503 is an acceptable 5xx): %s",
						c, r, i, resp.StatusCode, body)
					return
				}
				if h := resp.Header.Get("X-Videoapp-Degraded"); h != "" {
					degradedResponses.Add(1)
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("degraded response with status %d", resp.StatusCode)
						return
					}
					if len(strings.Split(h, ",")) == 0 {
						errs <- fmt.Errorf("empty degraded header")
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := served.Load(); got != clients*perClient {
		t.Fatalf("served %d of %d requests", got, clients*perClient)
	}
	if degradedResponses.Load() == 0 {
		t.Fatal("no degraded responses despite a vetted degradable chunk")
	}
	snap := s.Metrics().Snapshot()
	if got := snap.CounterTotal(obs.CtrServeDegraded); got != degradedResponses.Load() {
		t.Fatalf("serve_chunk_degraded = %d, clients observed %d degraded responses", got, degradedResponses.Load())
	}
	if snap.CounterTotal(obs.CtrReadRetries) == 0 {
		t.Fatal("no read retries recorded under a 1% transient profile")
	}
}

// TestServeDegradedHeader pins the single-fault degradation contract
// end to end without randomness: one corrupted approximate stream answers
// 200 + X-Videoapp-Degraded on the cold read and again on the cache hit,
// with the counter tracking responses, not decodes.
func TestServeDegradedHeader(t *testing.T) {
	data := buildArchiveBytes(t, 2)
	clean, err := store.OpenChunkArchiveAt(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	info, err := clean.Info(0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the last byte of chunk 0's payload: payloads end with the
	// final approximate stream, so this lands in a degradable region.
	bad := bytes.Clone(data)
	bad[info.Offset+info.Length-1] ^= 0x55
	a, err := store.OpenChunkArchiveAt(bytes.NewReader(bad), store.WithFaultPolicy(chaosPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	// Readahead off: the test pins the exact decode count of the two
	// foreground requests.
	s := New(a, WithFaultPolicy(chaosPolicy()), WithPrefetch(0))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for pass := 1; pass <= 2; pass++ {
		resp, err := ts.Client().Get(ts.URL + "/v1/chunks/0")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pass %d: status %d, want 200", pass, resp.StatusCode)
		}
		if resp.Header.Get("X-Videoapp-Degraded") == "" {
			t.Fatalf("pass %d: degraded response missing X-Videoapp-Degraded", pass)
		}
	}
	snap := s.Metrics().Snapshot()
	if got := snap.CounterTotal(obs.CtrServeDegraded); got != 2 {
		t.Fatalf("serve_chunk_degraded = %d, want 2 (one per response, cache hit included)", got)
	}
	if got := snap.CounterTotal(obs.CtrServeDecodes); got != 1 {
		t.Fatalf("serve_chunk_decodes = %d, want 1 (second response from cache)", got)
	}

	// A clean chunk on the same server carries no degraded header.
	resp, err := ts.Client().Get(ts.URL + "/v1/chunks/1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Videoapp-Degraded") != "" {
		t.Fatalf("clean chunk: status %d degraded %q", resp.StatusCode, resp.Header.Get("X-Videoapp-Degraded"))
	}
}

// togglingAt fails every read with a device error while broken is set.
type togglingAt struct {
	r      io.ReaderAt
	broken atomic.Bool
}

var errDeviceDown = errors.New("device offline")

func (d *togglingAt) ReadAt(p []byte, off int64) (int, error) {
	if d.broken.Load() {
		return 0, errDeviceDown
	}
	return d.r.ReadAt(p, off)
}

// TestCircuitBreakerShedsAndRecovers drives the breaker through its full
// cycle: consecutive hard failures open it, open means immediate 503 +
// Retry-After without touching the device, and after the cooldown a
// healthy device closes it again.
func TestCircuitBreakerShedsAndRecovers(t *testing.T) {
	data := buildArchiveBytes(t, 2)
	dev := &togglingAt{r: bytes.NewReader(data)}
	a, err := store.OpenChunkArchiveAt(dev) // healthy during indexing
	if err != nil {
		t.Fatal(err)
	}
	pol := store.FaultPolicy{
		MaxRetries:       -1, // first failure is final: each request = one hard failure
		RetryBackoff:     time.Microsecond,
		MaxBackoff:       time.Microsecond,
		BreakerThreshold: 3,
		BreakerCooldown:  150 * time.Millisecond,
	}
	s := New(a, WithFaultPolicy(pol), WithCacheBytes(1)) // degenerate cache: every request hits the device
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(i int) (int, string) {
		resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/chunks/%d", ts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}

	dev.broken.Store(true)
	// Three hard failures reach the threshold; each answers 503+Retry-After.
	for i := 0; i < pol.BreakerThreshold; i++ {
		status, retryAfter := get(0)
		if status != http.StatusServiceUnavailable || retryAfter == "" {
			t.Fatalf("failure %d: status %d retry-after %q, want 503 with hint", i, status, retryAfter)
		}
	}
	// The breaker is open: requests shed before touching the device.
	status, retryAfter := get(1)
	if status != http.StatusServiceUnavailable || retryAfter == "" {
		t.Fatalf("shed request: status %d retry-after %q", status, retryAfter)
	}
	snap := s.Metrics().Snapshot()
	if snap.CounterTotal(obs.CtrServeShed) == 0 {
		t.Fatal("open breaker shed nothing")
	}
	if snap.Gauge(obs.GaugeServeBreakerOpen, DefaultArchiveName) != 1 {
		t.Fatalf("serve_breaker_open = %v, want 1", snap.Gauge(obs.GaugeServeBreakerOpen, DefaultArchiveName))
	}

	// Device recovers; after the cooldown the probe succeeds and closes
	// the breaker.
	dev.broken.Store(false)
	time.Sleep(pol.BreakerCooldown + 50*time.Millisecond)
	if status, _ := get(0); status != http.StatusOK {
		t.Fatalf("post-cooldown probe: status %d, want 200", status)
	}
	snap = s.Metrics().Snapshot()
	if snap.Gauge(obs.GaugeServeBreakerOpen, DefaultArchiveName) != 0 {
		t.Fatalf("serve_breaker_open = %v after recovery, want 0", snap.Gauge(obs.GaugeServeBreakerOpen, DefaultArchiveName))
	}
	if status, _ := get(1); status != http.StatusOK {
		t.Fatalf("post-recovery read: status %d, want 200", status)
	}
}
