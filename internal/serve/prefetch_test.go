package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"videoapp/internal/cache"
	"videoapp/internal/obs"
	"videoapp/internal/store"
)

// waitUntil polls cond for up to two seconds — long past any decode on
// this hardware — and fails the test if it never holds.
func waitUntil(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPrefetchWarmsSequentialReads is the tentpole contract end to end: a
// request for chunk 0 warms chunks 1 and 2 in the background, so the
// sequential reader's next requests are cache hits (X-Cache: hit) that
// decoded off the request path, and the useful counter records them.
func TestPrefetchWarmsSequentialReads(t *testing.T) {
	a := buildArchive(t, 5)
	s := New(a) // defaults: readahead depth 2
	defer s.Catalog().Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/chunks/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("cold chunk 0: X-Cache = %q, want miss", got)
	}

	// Readahead for chunks 1 and 2 runs in the background; both land in
	// the cache (alongside chunk 0) without any further request.
	waitUntil(t, "readahead of chunks 1 and 2", func() bool {
		return s.CacheStats().Len >= 3
	})
	snap := s.Metrics().Snapshot()
	if got := snap.Counter(obs.CtrServePrefetchIssued, DefaultArchiveName); got < 2 {
		t.Fatalf("serve_prefetch_issued = %d, want >= 2", got)
	}

	for _, i := range []int{1, 2} {
		resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/chunks/%d", ts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk %d: status %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Cache"); got != "hit" {
			t.Fatalf("prefetched chunk %d: X-Cache = %q, want hit", i, got)
		}
	}
	snap = s.Metrics().Snapshot()
	if got := snap.Counter(obs.CtrServePrefetchUseful, DefaultArchiveName); got != 2 {
		t.Fatalf("serve_prefetch_useful = %d, want 2", got)
	}

	// The foreground hit/miss counters came from the single GetOrLoad:
	// exactly one miss (chunk 0) and two hits, no double counting.
	if got := snap.Counter(obs.CtrServeCacheMisses, DefaultArchiveName); got != 1 {
		t.Fatalf("serve_cache_misses = %d, want 1", got)
	}
	if got := snap.Counter(obs.CtrServeCacheHits, DefaultArchiveName); got != 2 {
		t.Fatalf("serve_cache_hits = %d, want 2", got)
	}
}

// TestPrefetchDisabled: WithPrefetch(0) builds no prefetcher, sequential
// reads all decode on demand, and no prefetch counters move.
func TestPrefetchDisabled(t *testing.T) {
	a := buildArchive(t, 3)
	s := New(a, WithPrefetch(0))
	if s.Catalog().prefetch != nil {
		t.Fatal("WithPrefetch(0) still built a prefetcher")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ {
		status, _ := get(t, ts.Client(), fmt.Sprintf("%s/v1/chunks/%d", ts.URL, i))
		if status != http.StatusOK {
			t.Fatalf("chunk %d: status %d", i, status)
		}
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counter(obs.CtrServeDecodes, DefaultArchiveName); got != 3 {
		t.Fatalf("decodes = %d, want 3 (no readahead)", got)
	}
	if got := snap.CounterTotal(obs.CtrServePrefetchIssued); got != 0 {
		t.Fatalf("serve_prefetch_issued = %d with readahead disabled", got)
	}
}

// prefetchFixture builds a one-tenant catalog with readahead workers
// running and returns the catalog, its prefetcher, and the tenant's cache
// space after the lazy open.
func prefetchFixture(t *testing.T, chunks int, options ...Option) (*Catalog, *prefetcher, string) {
	t.Helper()
	data := buildArchiveBytes(t, chunks)
	cat, err := NewCatalog([]ArchiveSpec{
		{Name: "m", Open: func() (store.Backend, error) { return store.NewMemBackend(data), nil }},
	}, options...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	if cat.prefetch == nil {
		t.Fatal("fixture catalog has no prefetcher")
	}
	_, _, space, release, err := cat.acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	release()
	return cat, cat.prefetch, space
}

// TestPrefetchNeverFiresThroughOpenBreaker: a job executing against a
// tenant whose breaker is open is dropped before any archive or cache
// work — nothing cached, nothing issued, and the breaker untouched.
func TestPrefetchNeverFiresThroughOpenBreaker(t *testing.T) {
	cat, p, space := prefetchFixture(t, 3)
	cat.mu.Lock()
	tn := cat.tenants["m"]
	cat.mu.Unlock()
	now := time.Now()
	for tn.breaker.allow(now) {
		tn.breaker.failure(now)
	}

	p.track("m", space, 1)
	p.execute(prefetchJob{tenant: "m", space: space, index: 1})

	if cache.In(cat.cache, space).Contains(1) {
		t.Fatal("prefetch cached a chunk through an open breaker")
	}
	snap := cat.Metrics().Snapshot()
	if got := snap.CounterTotal(obs.CtrServePrefetchIssued); got != 0 {
		t.Fatalf("serve_prefetch_issued = %d through an open breaker", got)
	}
	if got := snap.Counter(obs.CtrServeDecodes, "m"); got != 0 {
		t.Fatalf("decodes = %d, want 0 (the breaker must shed readahead)", got)
	}
}

// TestPrefetchNeverFiresOnRetiredTenant: jobs queued before a Remove die
// at execution time — the re-acquire finds the tenant gone — and the
// Remove itself sweeps the tracking table.
func TestPrefetchNeverFiresOnRetiredTenant(t *testing.T) {
	cat, p, space := prefetchFixture(t, 3)
	p.track("m", space, 1)
	if err := cat.Remove("m"); err != nil {
		t.Fatal(err)
	}
	p.execute(prefetchJob{tenant: "m", space: space, index: 1})

	if cache.In(cat.cache, space).Contains(1) {
		t.Fatal("prefetch cached a chunk for a removed tenant")
	}
	snap := cat.Metrics().Snapshot()
	if got := snap.CounterTotal(obs.CtrServePrefetchIssued); got != 0 {
		t.Fatalf("serve_prefetch_issued = %d on a retired tenant", got)
	}
	p.mu.Lock()
	tracked := len(p.state)
	p.mu.Unlock()
	if tracked != 0 {
		t.Fatalf("%d targets still tracked after Remove + drop", tracked)
	}
}

// TestPrefetchStaleGenerationDropped: a job scheduled under one open
// generation is dropped when the archive was since reopened under a new
// cache space.
func TestPrefetchStaleGenerationDropped(t *testing.T) {
	cat, p, space := prefetchFixture(t, 3, WithIdleTimeout(time.Millisecond))
	time.Sleep(2 * time.Millisecond)
	if n := cat.CloseIdle(time.Now()); n != 1 {
		t.Fatalf("CloseIdle closed %d, want 1", n)
	}
	// Reopen: the tenant gets a fresh generation, so `space` is stale.
	_, _, space2, release, err := cat.acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	release()
	if space2 == space {
		t.Fatalf("reopen kept cache space %q", space)
	}
	p.execute(prefetchJob{tenant: "m", space: space, index: 1})
	if cache.In(cat.cache, space).Contains(1) || cache.In(cat.cache, space2).Contains(1) {
		t.Fatal("stale-generation job still cached a chunk")
	}
}

// TestPrefetchPastEndOfArchive: readahead beyond the last chunk is
// dropped by the Info probe, uncounted.
func TestPrefetchPastEndOfArchive(t *testing.T) {
	cat, p, space := prefetchFixture(t, 2)
	p.track("m", space, 99)
	p.execute(prefetchJob{tenant: "m", space: space, index: 99})
	snap := cat.Metrics().Snapshot()
	if got := snap.CounterTotal(obs.CtrServePrefetchIssued); got != 0 {
		t.Fatalf("serve_prefetch_issued = %d past the end of the archive", got)
	}
}

// TestPrefetchOutcomeAccounting drives the tracked-state machine
// directly: a loaded target claimed by a hit is useful, claimed absent is
// wasted, re-armed after aging out unused is wasted, and a pending claim
// counts neither.
func TestPrefetchOutcomeAccounting(t *testing.T) {
	cat, p, space := prefetchFixture(t, 2)
	useful := func() int64 { return cat.Metrics().Snapshot().Counter(obs.CtrServePrefetchUseful, "m") }
	wasted := func() int64 { return cat.Metrics().Snapshot().Counter(obs.CtrServePrefetchWasted, "m") }

	// Loaded then served from cache: useful.
	p.track("m", space, 1)
	p.markLoaded(prefetchKey{space, 1})
	p.claim("m", space, 1, true)
	if useful() != 1 || wasted() != 0 {
		t.Fatalf("after useful claim: useful=%d wasted=%d", useful(), wasted())
	}
	// Claiming again is a no-op: the target was forgotten.
	p.claim("m", space, 1, true)
	if useful() != 1 {
		t.Fatalf("double claim counted twice: useful=%d", useful())
	}

	// Loaded but evicted before the client arrived: wasted.
	p.track("m", space, 2)
	p.markLoaded(prefetchKey{space, 2})
	p.claim("m", space, 2, false)
	if wasted() != 1 {
		t.Fatalf("evicted-before-use claim: wasted=%d, want 1", wasted())
	}

	// Loaded, never claimed, re-tracked while absent from the cache: the
	// earlier readahead aged out unused.
	p.track("m", space, 3)
	p.markLoaded(prefetchKey{space, 3})
	if !p.track("m", space, 3) {
		t.Fatal("re-track of an aged-out target refused")
	}
	if wasted() != 2 {
		t.Fatalf("aged-out re-track: wasted=%d, want 2", wasted())
	}

	// Still pending at claim time (the foreground coalesced onto the
	// readahead flight): neither useful nor wasted.
	p.claim("m", space, 3, false)
	if useful() != 1 || wasted() != 2 {
		t.Fatalf("pending claim moved counters: useful=%d wasted=%d", useful(), wasted())
	}
}

// TestPrefetchSchedulesOncePerTarget: a pending target is not re-queued
// by the next foreground request over the same window.
func TestPrefetchSchedulesOncePerTarget(t *testing.T) {
	_, p, space := prefetchFixture(t, 4)
	if !p.track("m", space, 2) {
		t.Fatal("first track refused")
	}
	if p.track("m", space, 2) {
		t.Fatal("pending target re-armed")
	}
}
