package bch

import (
	"math"
	"math/rand"
	"testing"
)

// TestEmpiricalFailureRateMatchesAnalytic drives actual codewords through
// actual error injection and the actual decoder, validating the analytic
// model the storage simulations rely on: a block fails exactly when it
// carries more than t raw errors.
func TestEmpiricalFailureRateMatchesAnalytic(t *testing.T) {
	const (
		tCap   = 2
		data   = 96
		p      = 0.008
		trials = 3000
	)
	c := MustNew(tCap, data)
	n := c.BlockBits()
	rng := rand.New(rand.NewSource(77))
	failures := 0
	for trial := 0; trial < trials; trial++ {
		payload := randBits(rng, data)
		block, err := c.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		// iid raw errors at rate p.
		flips := 0
		for i := range block {
			if rng.Float64() < p {
				block[i] ^= 1
				flips++
			}
		}
		got, _, ok := c.Decode(block)
		recovered := ok
		if recovered {
			for i := range payload {
				if got[i] != payload[i] {
					recovered = false
					break
				}
			}
		}
		if flips <= tCap && !recovered {
			t.Fatalf("trial %d: %d <= t errors but decode failed", trial, flips)
		}
		if !recovered {
			failures++
		}
	}
	want := UncorrectableBlockProbN(n, tCap, p)
	got := float64(failures) / trials
	// Binomial sampling noise: 3 sigma around the analytic rate.
	sigma := math.Sqrt(want * (1 - want) / trials)
	if math.Abs(got-want) > 3*sigma+0.005 {
		t.Fatalf("empirical failure rate %.4f vs analytic %.4f (sigma %.4f)", got, want, sigma)
	}
	t.Logf("empirical %.4f, analytic %.4f over %d trials", got, want, trials)
}

// TestDecoderNeverMiscorrectsWithinCapacity complements the statistical
// check: within capacity, the decoder must restore the exact payload, never
// merely report success.
func TestDecoderNeverMiscorrectsWithinCapacity(t *testing.T) {
	c := MustNew(4, 64)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		payload := randBits(rng, 64)
		block, _ := c.Encode(payload)
		k := rng.Intn(5) // 0..4 = t errors
		for _, pos := range rng.Perm(len(block))[:k] {
			block[pos] ^= 1
		}
		got, nCorr, ok := c.Decode(block)
		if !ok || nCorr != k {
			t.Fatalf("trial %d: ok=%v corrected=%d want %d", trial, ok, nCorr, k)
		}
		for i := range payload {
			if got[i] != payload[i] {
				t.Fatalf("trial %d: silent miscorrection", trial)
			}
		}
	}
}
