package bch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(rng *rand.Rand, n int) []int {
	b := make([]int, n)
	for i := range b {
		b[i] = rng.Intn(2)
	}
	return b
}

func TestParityBitsMatchFigure8(t *testing.T) {
	// The paper's Figure 8: BCH-t over 512-bit blocks adds 10t parity bits,
	// e.g. BCH-6 adds 60 bits (11.7% overhead), BCH-16 adds 160 (31.3%).
	for _, tc := range []struct {
		t        int
		overhead float64
	}{
		{6, 0.117}, {7, 0.1365}, {8, 0.156}, {9, 0.1755}, {10, 0.195}, {11, 0.215}, {16, 0.313},
	} {
		c := MustNew(tc.t, BlockDataBits)
		if c.ParityBits() != 10*tc.t {
			t.Fatalf("BCH-%d: %d parity bits, want %d", tc.t, c.ParityBits(), 10*tc.t)
		}
		if math.Abs(c.Overhead()-tc.overhead) > 0.005 {
			t.Fatalf("BCH-%d: overhead %.4f, want ~%.4f", tc.t, c.Overhead(), tc.overhead)
		}
	}
}

func TestEncodeDecodeClean(t *testing.T) {
	c := MustNew(6, BlockDataBits)
	rng := rand.New(rand.NewSource(1))
	data := randBits(rng, BlockDataBits)
	block, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(block) != c.BlockBits() {
		t.Fatalf("block len %d, want %d", len(block), c.BlockBits())
	}
	got, n, ok := c.Decode(block)
	if !ok || n != 0 {
		t.Fatalf("clean decode: ok=%v corrected=%d", ok, n)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestCorrectsUpToT(t *testing.T) {
	for _, tt := range []int{1, 2, 6, 8} {
		c := MustNew(tt, 128) // smaller payload keeps the test fast
		rng := rand.New(rand.NewSource(int64(tt)))
		for trial := 0; trial < 5; trial++ {
			data := randBits(rng, 128)
			block, _ := c.Encode(data)
			// Flip exactly tt distinct bits anywhere in the block
			// (data or parity — the code is self-correcting).
			perm := rng.Perm(len(block))[:tt]
			for _, p := range perm {
				block[p] ^= 1
			}
			got, n, ok := c.Decode(block)
			if !ok {
				t.Fatalf("t=%d trial %d: decode failed", tt, trial)
			}
			if n != tt {
				t.Fatalf("t=%d: corrected %d, want %d", tt, n, tt)
			}
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("t=%d: data bit %d wrong after correction", tt, i)
				}
			}
		}
	}
}

func TestDetectsBeyondT(t *testing.T) {
	c := MustNew(2, 128)
	rng := rand.New(rand.NewSource(9))
	failures := 0
	for trial := 0; trial < 20; trial++ {
		data := randBits(rng, 128)
		block, _ := c.Encode(data)
		for _, p := range rng.Perm(len(block))[:5] { // t+3 errors
			block[p] ^= 1
		}
		if _, _, ok := c.Decode(block); !ok {
			failures++
		}
	}
	// Beyond-t patterns are usually flagged; occasionally they alias into a
	// correctable pattern (miscorrection), which is inherent to BCH.
	if failures < 15 {
		t.Fatalf("only %d/20 beyond-t patterns detected", failures)
	}
}

func TestCorrectionProperty(t *testing.T) {
	c := MustNew(3, 64)
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64, nErr uint8) bool {
		k := int(nErr) % 4 // 0..3 errors
		r := rand.New(rand.NewSource(seed))
		data := randBits(r, 64)
		block, _ := c.Encode(data)
		for _, p := range r.Perm(len(block))[:k] {
			block[p] ^= 1
		}
		got, n, ok := c.Decode(block)
		if !ok || n != k {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeWrongLength(t *testing.T) {
	c := MustNew(2, 64)
	if _, err := c.Encode(make([]int, 63)); err == nil {
		t.Fatal("short payload must error")
	}
	if _, _, ok := c.Decode(make([]int, 10)); ok {
		t.Fatal("wrong block size must fail")
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(0, 512); err == nil {
		t.Fatal("t=0 must be rejected")
	}
	if _, err := New(60, 512); err == nil {
		t.Fatal("t=60 must be rejected")
	}
	if _, err := New(16, 1000); err == nil {
		t.Fatal("block longer than n=1023 must be rejected")
	}
}

func TestUncorrectableBlockProbLadder(t *testing.T) {
	// Each extra correctable bit should buy roughly an order of magnitude at
	// raw rate 1e-3, mirroring the right axis of Figure 8 / Table 1 ladder.
	prev := UncorrectableBlockProb(6, 1e-3)
	if prev <= 0 || prev > 1e-4 {
		t.Fatalf("BCH-6 block failure %g out of plausible range", prev)
	}
	for tt := 7; tt <= 16; tt++ {
		cur := UncorrectableBlockProb(tt, 1e-3)
		ratio := prev / cur
		if ratio < 3 || ratio > 50 {
			t.Fatalf("t=%d: ladder ratio %.1f not ~1 order of magnitude", tt, ratio)
		}
		prev = cur
	}
}

func TestUncorrectableBlockProbMonotoneInP(t *testing.T) {
	for _, tt := range []int{6, 10, 16} {
		last := 0.0
		for _, p := range []float64{1e-5, 1e-4, 1e-3, 1e-2} {
			cur := UncorrectableBlockProb(tt, p)
			if cur <= last {
				t.Fatalf("t=%d: block failure must increase with p", tt)
			}
			last = cur
		}
	}
}

func TestResidualBitErrorRate(t *testing.T) {
	if ResidualBitErrorRate(0, 1e-3) != 1e-3 {
		t.Fatal("no correction keeps the raw rate")
	}
	r6 := ResidualBitErrorRate(6, 1e-3)
	if r6 >= 1e-3 || r6 <= 0 {
		t.Fatalf("BCH-6 residual %g must improve on raw rate", r6)
	}
	if r16 := ResidualBitErrorRate(16, 1e-3); r16 >= r6 {
		t.Fatal("stronger codes must have lower residual rates")
	}
}

func TestSchemeOverheads(t *testing.T) {
	if got := SchemeBCH6.Overhead(); math.Abs(got-0.1171875) > 1e-9 {
		t.Fatalf("BCH-6 overhead = %v", got)
	}
	if got := SchemeBCH16.Overhead(); math.Abs(got-0.3125) > 1e-9 {
		t.Fatalf("BCH-16 overhead = %v", got)
	}
	if SchemeNone.Overhead() != 0 {
		t.Fatal("None must have zero overhead")
	}
}

func TestSchemeByName(t *testing.T) {
	if SchemeByName("BCH-9").T != 9 {
		t.Fatal("lookup failed")
	}
	if SchemeByName("nope").T != 0 {
		t.Fatal("unknown scheme must fall back to None")
	}
}

func TestSchemesOrderedByStrength(t *testing.T) {
	for i := 1; i < len(Schemes); i++ {
		if Schemes[i].T <= Schemes[i-1].T {
			t.Fatal("Schemes must be ordered weakest to strongest")
		}
		if Schemes[i].NominalRate >= Schemes[i-1].NominalRate {
			t.Fatal("stronger schemes must have lower nominal rates")
		}
	}
}

func BenchmarkEncode512(b *testing.B) {
	b.ReportAllocs()
	c := MustNew(6, BlockDataBits)
	rng := rand.New(rand.NewSource(3))
	data := randBits(rng, BlockDataBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(data)
	}
}

func BenchmarkDecode512With3Errors(b *testing.B) {
	b.ReportAllocs()
	c := MustNew(6, BlockDataBits)
	rng := rand.New(rand.NewSource(3))
	data := randBits(rng, BlockDataBits)
	clean, _ := c.Encode(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := append([]int(nil), clean...)
		block[5] ^= 1
		block[100] ^= 1
		block[400] ^= 1
		c.Decode(block)
	}
}
