// Package bch implements binary BCH error-correcting codes over GF(2^10),
// shortened to protect 512-bit storage blocks, matching the BCH-X codes of
// Figure 8 in the paper: a BCH-t code adds 10·t parity bits per 512-bit block
// and corrects any t bit errors within the protected block (data + parity;
// the codes are self-correcting).
package bch

import (
	"fmt"

	"videoapp/internal/gf"
)

// BlockDataBits is the payload size protected by one code block, matching
// the 512-bit PCM blocks used in the paper.
const BlockDataBits = 512

// Code is a shortened binary BCH code correcting up to T errors per block.
type Code struct {
	field   *gf.Field
	t       int      // correction capability
	gen     gf.Poly2 // generator polynomial
	parity  int      // number of parity bits = deg(gen)
	dataLen int      // payload bits per block
}

// New constructs a shortened BCH code over GF(2^10) (natural length 1023)
// with dataBits payload bits per block, correcting up to t errors.
func New(t, dataBits int) (*Code, error) {
	if t < 1 || t > 58 {
		return nil, fmt.Errorf("bch: unsupported correction capability t=%d", t)
	}
	f := gf.MustField(10)
	gen := gf.One()
	seen := map[int]bool{}
	for i := 1; i <= 2*t-1; i += 2 {
		// Skip exponents already covered by an earlier cyclotomic coset.
		if cosetCovered(seen, i, f.N()) {
			continue
		}
		gen = gen.Mul(f.MinimalPoly(i))
	}
	parity := gen.Degree()
	if dataBits+parity > f.N() {
		return nil, fmt.Errorf("bch: block of %d+%d bits exceeds code length %d", dataBits, parity, f.N())
	}
	return &Code{field: f, t: t, gen: gen, parity: parity, dataLen: dataBits}, nil
}

// MustNew is New panicking on error; for statically valid parameters.
func MustNew(t, dataBits int) *Code {
	c, err := New(t, dataBits)
	if err != nil {
		panic(err)
	}
	return c
}

func cosetCovered(seen map[int]bool, i, n int) bool {
	if seen[i] {
		return true
	}
	for e := i; !seen[e]; e = e * 2 % n {
		seen[e] = true
	}
	return false
}

// T returns the number of errors the code corrects per block.
func (c *Code) T() int { return c.t }

// ParityBits returns the number of parity bits appended per block.
func (c *Code) ParityBits() int { return c.parity }

// DataBits returns the payload bits per block.
func (c *Code) DataBits() int { return c.dataLen }

// BlockBits returns the total coded block size in bits.
func (c *Code) BlockBits() int { return c.dataLen + c.parity }

// Overhead returns the storage overhead, parity bits / data bits.
func (c *Code) Overhead() float64 {
	return float64(c.parity) / float64(c.dataLen)
}

// Encode computes the systematic codeword for the given data bits
// (data[i] in {0,1}, len(data) == DataBits) and returns data followed by
// ParityBits parity bits.
func (c *Code) Encode(data []int) ([]int, error) {
	if len(data) != c.dataLen {
		return nil, fmt.Errorf("bch: payload is %d bits, want %d", len(data), c.dataLen)
	}
	// Systematic encoding with an LFSR: remainder of data(x)·x^parity mod g(x).
	// rem holds the shift register, rem[0] is the highest-order stage.
	rem := make([]int, c.parity)
	for _, bit := range data {
		fb := bit ^ rem[0]
		copy(rem, rem[1:])
		rem[c.parity-1] = 0
		if fb == 1 {
			for j := 0; j < c.parity; j++ {
				// Stage j corresponds to coefficient x^(parity-1-j) of g,
				// excluding the leading x^parity term.
				if c.gen.Bit(c.parity-1-j) == 1 {
					rem[j] ^= 1
				}
			}
		}
	}
	out := make([]int, 0, c.dataLen+c.parity)
	out = append(out, data...)
	out = append(out, rem...)
	return out, nil
}

// Decode corrects up to T bit errors in the coded block in place and
// returns the corrected payload, the number of corrected errors, and whether
// decoding succeeded. On failure (more than T errors or an inconsistent
// syndrome) the payload is returned as stored, uncorrected.
func (c *Code) Decode(block []int) (data []int, corrected int, ok bool) {
	if len(block) != c.BlockBits() {
		return nil, 0, false
	}
	nBits := len(block)
	// Syndromes S_j = r(alpha^j) for j = 1..2t. Bit i of the block is the
	// coefficient of x^(nBits-1-i).
	synd := make([]int, 2*c.t+1)
	anyErr := false
	for j := 1; j <= 2*c.t; j++ {
		s := 0
		for i, bit := range block {
			if bit == 1 {
				s ^= c.field.Exp(j * (nBits - 1 - i))
			}
		}
		synd[j] = s
		if s != 0 {
			anyErr = true
		}
	}
	if !anyErr {
		return append([]int(nil), block[:c.dataLen]...), 0, true
	}
	sigma := c.berlekampMassey(synd)
	degree := len(sigma) - 1
	if degree > c.t {
		return append([]int(nil), block[:c.dataLen]...), 0, false
	}
	// Chien search over the shortened positions: position i has exponent
	// e = nBits-1-i; it is in error iff sigma(alpha^{-e}) == 0.
	locs := []int{}
	for i := 0; i < nBits; i++ {
		e := nBits - 1 - i
		x := c.field.Exp(-e)
		v := 0
		for d, coef := range sigma {
			if coef != 0 {
				v ^= c.field.Mul(coef, c.field.Pow(x, d))
			}
		}
		if v == 0 {
			locs = append(locs, i)
		}
	}
	if len(locs) != degree {
		return append([]int(nil), block[:c.dataLen]...), 0, false
	}
	for _, i := range locs {
		block[i] ^= 1
	}
	return append([]int(nil), block[:c.dataLen]...), len(locs), true
}

// berlekampMassey computes the error-locator polynomial sigma from the
// syndromes (synd[1..2t]); sigma[d] is the coefficient of x^d.
func (c *Code) berlekampMassey(synd []int) []int {
	f := c.field
	sigma := []int{1}
	b := []int{1}
	var l, m int = 0, 1
	bCoef := 1
	for n := 1; n <= 2*c.t; n++ {
		// Discrepancy d = S_n + sum_{i=1..l} sigma_i * S_{n-i}.
		d := synd[n]
		for i := 1; i <= l && i < len(sigma); i++ {
			if sigma[i] != 0 && n-i >= 1 {
				d ^= f.Mul(sigma[i], synd[n-i])
			}
		}
		if d == 0 {
			m++
			continue
		}
		// sigma' = sigma - (d/bCoef) x^m b(x)
		scale := f.Div(d, bCoef)
		next := make([]int, max(len(sigma), len(b)+m))
		copy(next, sigma)
		for i, coef := range b {
			if coef != 0 {
				next[i+m] ^= f.Mul(scale, coef)
			}
		}
		if 2*l <= n-1 {
			b = sigma
			bCoef = d
			l = n - l
			m = 1
		} else {
			m++
		}
		sigma = next
	}
	// Trim trailing zeros.
	end := len(sigma)
	for end > 1 && sigma[end-1] == 0 {
		end--
	}
	return sigma[:end]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
