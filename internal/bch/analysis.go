package bch

import "math"

// Scheme describes one error-correction configuration from the paper's
// Figure 8 / Table 1: a BCH-t code over 512-bit blocks on a substrate with
// raw bit error rate 10^-3, together with the nominal post-correction error
// rate the paper quotes for it.
type Scheme struct {
	Name string
	// T is the per-block correction capability; 0 means no correction.
	T int
	// NominalRate is the post-correction bit error rate the paper assigns
	// (e.g. 1e-6 for BCH-6). T == 0 keeps the substrate's raw rate.
	NominalRate float64
}

// Overhead returns the storage overhead of the scheme (parity/data) for
// 512-bit blocks: 10·t/512.
func (s Scheme) Overhead() float64 {
	return float64(10*s.T) / float64(BlockDataBits)
}

// Standard schemes used in the paper (Figure 8 and Table 1).
var (
	SchemeNone  = Scheme{Name: "None", T: 0, NominalRate: 1e-3}
	SchemeBCH6  = Scheme{Name: "BCH-6", T: 6, NominalRate: 1e-6}
	SchemeBCH7  = Scheme{Name: "BCH-7", T: 7, NominalRate: 1e-7}
	SchemeBCH8  = Scheme{Name: "BCH-8", T: 8, NominalRate: 1e-8}
	SchemeBCH9  = Scheme{Name: "BCH-9", T: 9, NominalRate: 1e-9}
	SchemeBCH10 = Scheme{Name: "BCH-10", T: 10, NominalRate: 1e-10}
	SchemeBCH11 = Scheme{Name: "BCH-11", T: 11, NominalRate: 1e-11}
	SchemeBCH16 = Scheme{Name: "BCH-16", T: 16, NominalRate: 1e-16}
)

// Schemes lists the ladder of schemes available to the assignment algorithm,
// ordered from weakest to strongest.
var Schemes = []Scheme{
	SchemeNone, SchemeBCH6, SchemeBCH7, SchemeBCH8, SchemeBCH9,
	SchemeBCH10, SchemeBCH11, SchemeBCH16,
}

// SchemeByName returns the named scheme, or SchemeNone if unknown.
func SchemeByName(name string) Scheme {
	for _, s := range Schemes {
		if s.Name == name {
			return s
		}
	}
	return SchemeNone
}

// UncorrectableBlockProb returns the probability that a coded block of
// n = 512 + 10·t bits suffers more than t raw errors at raw bit error rate p,
// i.e. the probability the block cannot be corrected.
func UncorrectableBlockProb(t int, p float64) float64 {
	if t <= 0 {
		// No correction: the block is "uncorrectable" whenever any bit
		// flips; callers use the raw rate directly instead.
		return 1 - math.Pow(1-p, float64(BlockDataBits))
	}
	return UncorrectableBlockProbN(BlockDataBits+10*t, t, p)
}

// UncorrectableBlockProbN is the general form: P(X > t) for
// X ~ Binomial(n, p), computed in log space so that rates down to 1e-18
// stay meaningful.
func UncorrectableBlockProbN(n, t int, p float64) float64 {
	// The series decays geometrically with ratio ~np/k past the mean, so a
	// bounded number of terms suffices at the small p of interest.
	var total float64
	for k := t + 1; k <= t+64 && k <= n; k++ {
		total += math.Exp(logBinomPMF(n, k, p))
	}
	return total
}

// ResidualBitErrorRate estimates the post-correction bit error rate of a
// BCH-t scheme at raw rate p: when a block fails, the expected number of
// erroneous payload bits is slightly above t+1 (the decoder also leaves the
// original errors in place), spread over the payload.
func ResidualBitErrorRate(t int, p float64) float64 {
	if t <= 0 {
		return p
	}
	n := BlockDataBits + 10*t
	blockFail := UncorrectableBlockProb(t, p)
	expectedErrs := float64(t + 1)
	return blockFail * expectedErrs / float64(n) * float64(n) / float64(BlockDataBits)
}

func logBinomPMF(n, k int, p float64) float64 {
	lg := func(x float64) float64 { v, _ := math.Lgamma(x); return v }
	logC := lg(float64(n+1)) - lg(float64(k+1)) - lg(float64(n-k+1))
	return logC + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}
