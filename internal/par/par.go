// Package par is the shared worker-pool helper behind every parallel path
// in the system: GOP-parallel encoding and decoding, per-frame error
// injection and footprint accounting, the analysis fan-out and the quality
// metric workers. It provides deterministic, context-aware fan-out over an
// index space with a bounded number of goroutines, and optional
// runtime/pprof labelling so CPU profiles attribute samples to pipeline
// stages.
//
// Determinism contract: ForEach itself imposes no ordering between items, so
// callers must make items independent (write to disjoint slice elements,
// derive per-item RNGs from the item index) and perform any floating-point
// or otherwise order-sensitive reduction themselves, in index order, after
// ForEach returns. Under that discipline results are identical at every
// worker count.
package par

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n), using at most workers concurrent
// goroutines (workers <= 0 selects GOMAXPROCS; workers == 1 runs inline on
// the calling goroutine with no scheduling overhead).
//
// Cancellation is cooperative: ctx is polled before each item, no new items
// start after it is cancelled, and ctx.Err() is returned once the in-flight
// items drain. When items fail, the error of the lowest failing index is
// returned — the same error a serial loop would have surfaced first — and
// no further items are scheduled.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	return ForEachLabeled(ctx, n, workers, "", "", fn)
}

// ForEachLabeled is ForEach with runtime/pprof labels applied around the
// worker tasks, so CPU profiles attribute samples to pipeline stages.
//
// With stage != "" and itemKey == "", every worker runs its whole item loop
// under the label set {stage: stage} — the cheap mode for per-frame
// fan-outs with many small items. With itemKey != "" each item additionally
// runs under {itemKey: i} (e.g. stage=encode, gop=3), which costs one label
// set per item and suits coarse units such as GOPs or decode spans. With
// stage == "" no labels are applied and the behaviour and cost are exactly
// ForEach's. Labels never affect results: they only annotate profiles.
func ForEachLabeled(ctx context.Context, n, workers int, stage, itemKey string, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	run := fn
	if stage != "" && itemKey != "" {
		run = func(i int) error {
			var err error
			pprof.Do(ctx, pprof.Labels("stage", stage, itemKey, strconv.Itoa(i)), func(context.Context) {
				err = fn(i)
			})
			return err
		}
	}
	if workers == 1 {
		serial := func() error {
			for i := 0; i < n; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := run(i); err != nil {
					return err
				}
			}
			return nil
		}
		if stage == "" || itemKey != "" {
			return serial()
		}
		var err error
		pprof.Do(ctx, pprof.Labels("stage", stage), func(context.Context) { err = serial() })
		return err
	}

	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	next.Store(-1)
	errs := make([]error, n)
	loop := func() {
		for {
			if stop.Load() || ctx.Err() != nil {
				return
			}
			i := int(next.Add(1))
			if i >= n {
				return
			}
			if err := run(i); err != nil {
				errs[i] = err
				stop.Store(true)
				return
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if stage != "" && itemKey == "" {
				pprof.Do(ctx, pprof.Labels("stage", stage), func(context.Context) { loop() })
			} else {
				loop()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
