// Package par is the shared worker-pool helper behind every parallel path
// in the system: GOP-parallel encoding and decoding, per-frame error
// injection and footprint accounting, the analysis fan-out and the quality
// metric workers. It provides deterministic, context-aware fan-out over an
// index space with a bounded number of goroutines.
//
// Determinism contract: ForEach itself imposes no ordering between items, so
// callers must make items independent (write to disjoint slice elements,
// derive per-item RNGs from the item index) and perform any floating-point
// or otherwise order-sensitive reduction themselves, in index order, after
// ForEach returns. Under that discipline results are identical at every
// worker count.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n), using at most workers concurrent
// goroutines (workers <= 0 selects GOMAXPROCS; workers == 1 runs inline on
// the calling goroutine with no scheduling overhead).
//
// Cancellation is cooperative: ctx is polled before each item, no new items
// start after it is cancelled, and ctx.Err() is returned once the in-flight
// items drain. When items fail, the error of the lowest failing index is
// returned — the same error a serial loop would have surfaced first — and
// no further items are scheduled.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	next.Store(-1)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
