package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Fatal("non-positive worker counts must map to GOMAXPROCS")
	}
	if Workers(7) != 7 {
		t.Fatal("positive worker counts must pass through")
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 257
		var counts [n]atomic.Int32
		if err := ForEach(context.Background(), n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	want := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), 16, workers, func(i int) error {
			if i == 3 || i == 11 {
				return fmt.Errorf("item %d: %w", i, want)
			}
			return nil
		})
		if !errors.Is(err, want) {
			t.Fatalf("workers=%d: got %v", workers, err)
		}
		// The serial path must surface exactly the first failing index.
		if workers == 1 && err.Error() != "item 3: boom" {
			t.Fatalf("serial error = %v", err)
		}
	}
}

func TestForEachCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		done := make(chan error, 1)
		go func() {
			done <- ForEach(ctx, 1<<20, workers, func(i int) error {
				if started.Add(1) == int32(workers) {
					cancel()
				}
				time.Sleep(time.Millisecond)
				return nil
			})
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: got %v", workers, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: ForEach did not return after cancellation", workers)
		}
		if s := started.Load(); s > 1<<19 {
			t.Fatalf("workers=%d: %d items started after prompt cancellation", workers, s)
		}
		cancel()
	}
}

func TestForEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 8, 2, func(int) error { return errors.New("must not run") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}
