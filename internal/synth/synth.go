// Package synth generates deterministic synthetic raw video sequences that
// stand in for the 14 Xiph.org test sequences used in the paper (which are
// not redistributable here). Each preset combines a textured background,
// camera pan, moving sprites, sensor noise and optional scene cuts so that
// the encoded streams exhibit the motion/texture diversity — and hence the
// dependency-graph diversity — the experiments rely on.
package synth

import (
	"math"
	"math/rand"

	"videoapp/internal/frame"
)

// Config describes one synthetic sequence.
type Config struct {
	Name      string
	Seed      int64
	W, H      int     // luma dimensions, multiples of 16
	Frames    int     // number of frames
	FPS       int     // frame rate
	Sprites   int     // number of moving objects
	SpriteV   float64 // max sprite speed, pixels/frame
	PanX      float64 // background pan, pixels/frame
	PanY      float64
	Texture   float64 // background texture amplitude 0..1
	Noise     float64 // per-pixel sensor noise sigma (luma levels)
	SceneCuts int     // number of hard scene changes
	Shake     float64 // camera shake amplitude, pixels
}

// sprite is one moving object with its own texture phase.
type sprite struct {
	x, y, vx, vy float64
	w, h         int
	base         uint8
	phase        float64
	ellipse      bool
}

// Generate renders the configured sequence.
func Generate(cfg Config) *frame.Sequence {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sprites := make([]sprite, cfg.Sprites)
	for i := range sprites {
		sprites[i] = sprite{
			x:       rng.Float64() * float64(cfg.W),
			y:       rng.Float64() * float64(cfg.H),
			vx:      (rng.Float64()*2 - 1) * cfg.SpriteV,
			vy:      (rng.Float64()*2 - 1) * cfg.SpriteV,
			w:       16 + rng.Intn(cfg.W/4+1),
			h:       16 + rng.Intn(cfg.H/4+1),
			base:    uint8(64 + rng.Intn(160)),
			phase:   rng.Float64() * 100,
			ellipse: rng.Intn(2) == 0,
		}
	}
	cutAt := map[int]bool{}
	for i := 1; i <= cfg.SceneCuts; i++ {
		cutAt[i*cfg.Frames/(cfg.SceneCuts+1)] = true
	}

	seq := &frame.Sequence{Name: cfg.Name, FPS: cfg.FPS}
	scene := 0
	for t := 0; t < cfg.Frames; t++ {
		if cutAt[t] {
			scene++
			for i := range sprites {
				sprites[i].x = rng.Float64() * float64(cfg.W)
				sprites[i].y = rng.Float64() * float64(cfg.H)
				sprites[i].base = uint8(64 + rng.Intn(160))
			}
		}
		shakeX := cfg.Shake * math.Sin(float64(t)*1.7)
		shakeY := cfg.Shake * math.Cos(float64(t)*2.3)
		f := renderFrame(cfg, sprites, t, scene, shakeX, shakeY, rng)
		seq.Frames = append(seq.Frames, f)
		for i := range sprites {
			s := &sprites[i]
			s.x += s.vx
			s.y += s.vy
			if s.x < -float64(s.w) {
				s.x = float64(cfg.W)
			}
			if s.x > float64(cfg.W) {
				s.x = -float64(s.w)
			}
			if s.y < -float64(s.h) {
				s.y = float64(cfg.H)
			}
			if s.y > float64(cfg.H) {
				s.y = -float64(s.h)
			}
		}
	}
	return seq
}

func renderFrame(cfg Config, sprites []sprite, t, scene int, shakeX, shakeY float64, rng *rand.Rand) *frame.Frame {
	f := frame.MustNew(cfg.W, cfg.H)
	panX := cfg.PanX*float64(t) + shakeX
	panY := cfg.PanY*float64(t) + shakeY
	sceneShift := float64(scene) * 37.0
	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			wx := float64(x) + panX + sceneShift
			wy := float64(y) + panY
			v := background(wx, wy, cfg.Texture)
			for i := range sprites {
				s := &sprites[i]
				dx, dy := float64(x)-s.x, float64(y)-s.y
				if dx < 0 || dy < 0 || dx >= float64(s.w) || dy >= float64(s.h) {
					continue
				}
				if s.ellipse {
					nx := dx/float64(s.w)*2 - 1
					ny := dy/float64(s.h)*2 - 1
					if nx*nx+ny*ny > 1 {
						continue
					}
				}
				tex := 20 * math.Sin((dx+s.phase)*0.4) * math.Cos(dy*0.3)
				v = float64(s.base) + tex
			}
			if cfg.Noise > 0 {
				v += rng.NormFloat64() * cfg.Noise
			}
			f.Y[y*cfg.W+x] = frame.ClampU8(int(v))
		}
	}
	// Chroma: smooth field derived from position and scene, subsampled.
	cw, ch := cfg.W/2, cfg.H/2
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			f.Cb[y*cw+x] = frame.ClampU8(128 + int(24*math.Sin((float64(x)+panX+sceneShift)*0.02)))
			f.Cr[y*cw+x] = frame.ClampU8(128 + int(24*math.Cos((float64(y)+panY)*0.02)))
		}
	}
	return f
}

// background combines three incommensurate sinusoids into a stable textured
// field — a cheap deterministic stand-in for natural image texture.
func background(x, y, amp float64) float64 {
	v := 110.0
	v += amp * 35 * math.Sin(x*0.071+y*0.033)
	v += amp * 22 * math.Sin(x*0.013-y*0.057)
	v += amp * 12 * math.Sin((x+y)*0.151)
	return v
}
