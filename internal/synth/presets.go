package synth

// Presets mirrors the 14-sequence Xiph.org suite used in the paper
// (720p, 500-600 frames, 50-60 fps) with synthetic equivalents spanning the
// same content spectrum: talking heads, sports panning, crowd motion, static
// surveillance, noisy handheld footage, and scene-cut heavy material.
//
// The dimensions and lengths here are the full-scale defaults; experiment
// code scales them down with ScaleTo for CI-sized runs.
var Presets = []Config{
	{Name: "crew_like", Seed: 101, W: 1280, H: 720, Frames: 500, FPS: 60, Sprites: 6, SpriteV: 3.0, PanX: 0.2, Texture: 0.7, Noise: 1.5},
	{Name: "parkrun_like", Seed: 102, W: 1280, H: 720, Frames: 504, FPS: 50, Sprites: 8, SpriteV: 5.0, PanX: 2.5, PanY: 0.1, Texture: 1.0, Noise: 2.0},
	{Name: "shields_like", Seed: 103, W: 1280, H: 720, Frames: 504, FPS: 50, Sprites: 3, SpriteV: 1.5, PanX: 1.8, Texture: 0.9, Noise: 1.0},
	{Name: "stockholm_like", Seed: 104, W: 1280, H: 720, Frames: 604, FPS: 60, Sprites: 5, SpriteV: 0.8, PanX: 1.2, Texture: 0.8, Noise: 0.8},
	{Name: "mobcal_like", Seed: 105, W: 1280, H: 720, Frames: 504, FPS: 50, Sprites: 4, SpriteV: 2.2, PanY: 1.0, Texture: 0.9, Noise: 1.2},
	{Name: "news_like", Seed: 106, W: 1280, H: 720, Frames: 500, FPS: 50, Sprites: 2, SpriteV: 0.5, Texture: 0.4, Noise: 0.5},
	{Name: "surveillance_like", Seed: 107, W: 1280, H: 720, Frames: 600, FPS: 50, Sprites: 3, SpriteV: 1.0, Texture: 0.3, Noise: 1.0},
	{Name: "sports_like", Seed: 108, W: 1280, H: 720, Frames: 500, FPS: 60, Sprites: 10, SpriteV: 6.0, PanX: 3.0, Texture: 0.8, Noise: 1.5, Shake: 1.0},
	{Name: "handheld_like", Seed: 109, W: 1280, H: 720, Frames: 500, FPS: 50, Sprites: 4, SpriteV: 2.0, Texture: 0.7, Noise: 3.0, Shake: 2.5},
	{Name: "interview_like", Seed: 110, W: 1280, H: 720, Frames: 550, FPS: 50, Sprites: 2, SpriteV: 0.7, Texture: 0.5, Noise: 0.7, SceneCuts: 3},
	{Name: "crowd_like", Seed: 111, W: 1280, H: 720, Frames: 500, FPS: 60, Sprites: 14, SpriteV: 2.5, Texture: 0.9, Noise: 1.8},
	{Name: "ducks_like", Seed: 112, W: 1280, H: 720, Frames: 500, FPS: 50, Sprites: 7, SpriteV: 1.8, PanX: 0.5, Texture: 1.0, Noise: 2.2},
	{Name: "cityride_like", Seed: 113, W: 1280, H: 720, Frames: 600, FPS: 60, Sprites: 6, SpriteV: 3.5, PanX: 2.0, PanY: 0.5, Texture: 0.8, Noise: 1.2, SceneCuts: 2},
	{Name: "animation_like", Seed: 114, W: 1280, H: 720, Frames: 500, FPS: 50, Sprites: 5, SpriteV: 4.0, Texture: 0.2, Noise: 0.0, SceneCuts: 4},
}

// PresetByName returns the named preset config and whether it exists.
func PresetByName(name string) (Config, bool) {
	for _, p := range Presets {
		if p.Name == name {
			return p, true
		}
	}
	return Config{}, false
}

// ScaleTo returns a copy of cfg with dimensions and length reduced for fast
// experimentation while preserving the motion character: sprite and pan
// speeds are scaled with the resolution so relative motion stays the same.
func (c Config) ScaleTo(w, h, frames int) Config {
	s := c
	scale := float64(w) / float64(c.W)
	s.W, s.H, s.Frames = w, h, frames
	s.SpriteV *= scale
	s.PanX *= scale
	s.PanY *= scale
	s.Shake *= scale
	if s.SceneCuts > frames/20 {
		s.SceneCuts = frames / 20
	}
	return s
}
