package synth

import (
	"testing"

	"videoapp/internal/frame"
)

func small(name string) Config {
	cfg, ok := PresetByName(name)
	if !ok {
		panic("unknown preset " + name)
	}
	return cfg.ScaleTo(64, 48, 10)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(small("parkrun_like"))
	b := Generate(small("parkrun_like"))
	if len(a.Frames) != 10 || len(b.Frames) != 10 {
		t.Fatal("frame count")
	}
	for i := range a.Frames {
		for j := range a.Frames[i].Y {
			if a.Frames[i].Y[j] != b.Frames[i].Y[j] {
				t.Fatalf("frame %d pixel %d differs between identical configs", i, j)
			}
		}
	}
}

func TestPresetsDistinct(t *testing.T) {
	a := Generate(small("parkrun_like"))
	b := Generate(small("news_like"))
	same := 0
	for j := range a.Frames[0].Y {
		if a.Frames[0].Y[j] == b.Frames[0].Y[j] {
			same++
		}
	}
	if same > len(a.Frames[0].Y)/2 {
		t.Fatal("different presets must render different content")
	}
}

func TestFramesChangeOverTime(t *testing.T) {
	seq := Generate(small("sports_like"))
	diff := 0
	for j := range seq.Frames[0].Y {
		if seq.Frames[0].Y[j] != seq.Frames[5].Y[j] {
			diff++
		}
	}
	if diff < len(seq.Frames[0].Y)/20 {
		t.Fatal("motion preset must actually move")
	}
}

func TestStaticPresetMostlyStatic(t *testing.T) {
	cfg := small("news_like")
	cfg.Sprites = 0
	cfg.Noise = 0
	cfg.Shake = 0
	cfg.PanX, cfg.PanY = 0, 0
	seq := Generate(cfg)
	for j := range seq.Frames[0].Y {
		if seq.Frames[0].Y[j] != seq.Frames[9].Y[j] {
			t.Fatal("fully static config must produce identical frames")
		}
	}
}

func TestAllPresetsValidGeometry(t *testing.T) {
	if len(Presets) != 14 {
		t.Fatalf("suite has %d sequences, want 14 as in the paper", len(Presets))
	}
	seen := map[string]bool{}
	for _, p := range Presets {
		if seen[p.Name] {
			t.Fatalf("duplicate preset %q", p.Name)
		}
		seen[p.Name] = true
		if p.W%frame.MBSize != 0 || p.H%frame.MBSize != 0 {
			t.Fatalf("%s: dimensions not MB aligned", p.Name)
		}
		if p.Frames < 500 || p.Frames > 604 {
			t.Fatalf("%s: %d frames outside the paper's 500-600 range", p.Name, p.Frames)
		}
		if p.FPS != 50 && p.FPS != 60 {
			t.Fatalf("%s: fps %d", p.Name, p.FPS)
		}
	}
}

func TestPresetByNameUnknown(t *testing.T) {
	if _, ok := PresetByName("nope"); ok {
		t.Fatal("unknown preset must not resolve")
	}
}

func TestScaleToPreservesRelativeMotion(t *testing.T) {
	cfg, _ := PresetByName("parkrun_like")
	s := cfg.ScaleTo(320, 180, 50)
	if s.W != 320 || s.H != 180 || s.Frames != 50 {
		t.Fatal("dims")
	}
	wantPan := cfg.PanX * 320 / 1280
	if s.PanX != wantPan {
		t.Fatalf("pan %v, want %v", s.PanX, wantPan)
	}
}

func TestSceneCutChangesContent(t *testing.T) {
	cfg := small("animation_like")
	cfg.SceneCuts = 1
	cfg.Noise = 0
	seq := Generate(cfg)
	// The cut is at frame 5; frames 4 and 5 should differ substantially.
	diff := 0
	for j := range seq.Frames[4].Y {
		d := int(seq.Frames[4].Y[j]) - int(seq.Frames[5].Y[j])
		if d < -4 || d > 4 {
			diff++
		}
	}
	if diff < len(seq.Frames[4].Y)/20 {
		t.Fatalf("scene cut changed only %d pixels", diff)
	}
}

func BenchmarkGenerateQCIFFrame(b *testing.B) {
	b.ReportAllocs()
	cfg, _ := PresetByName("crew_like")
	cfg = cfg.ScaleTo(176, 144, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
