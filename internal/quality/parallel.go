package quality

import (
	"context"
	"fmt"

	"videoapp/internal/frame"
	"videoapp/internal/obs"
	"videoapp/internal/par"
)

// frameReport is the full metric set of one frame pair, computed
// independently per frame and reduced in frame order so the averages are
// bit-identical to the serial metric loops at every worker count.
type frameReport struct {
	psnr, ssim, msssim, vif float64
}

// MeasureContext is Measure with per-frame fan-out across workers and
// cooperative cancellation checked at frame boundaries. workers <= 0
// selects GOMAXPROCS; the result is identical to Measure for every worker
// count.
func MeasureContext(ctx context.Context, ref, dist *frame.Sequence, workers int) (Report, error) {
	if len(ref.Frames) != len(dist.Frames) {
		return Report{}, fmt.Errorf("quality: sequence lengths %d vs %d differ", len(ref.Frames), len(dist.Frames))
	}
	if len(ref.Frames) == 0 {
		return Report{}, fmt.Errorf("quality: empty sequences")
	}
	o := obs.From(ctx)
	defer obs.StartSpan(o, obs.StageMeasure).End()
	n := len(ref.Frames)
	perFrame := make([]frameReport, n)
	err := par.ForEachLabeled(ctx, n, workers, obs.StageMeasure, "", func(i int) error {
		a, b := ref.Frames[i], dist.Frames[i]
		var fr frameReport
		var err error
		if fr.psnr, err = PSNRFrame(a, b); err != nil {
			return err
		}
		if fr.ssim, err = SSIMFrame(a, b); err != nil {
			return err
		}
		if fr.msssim, err = MSSSIMFrame(a, b); err != nil {
			return err
		}
		if fr.vif, err = VIFFrame(a, b); err != nil {
			return err
		}
		perFrame[i] = fr
		o.FrameDone(obs.StageMeasure, 1)
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	// Reduce in frame order: the same addition order as the serial metric
	// loops, hence bit-identical averages.
	var r Report
	for _, fr := range perFrame {
		r.PSNR += fr.psnr
		r.SSIM += fr.ssim
		r.MSSSIM += fr.msssim
		r.VIF += fr.vif
	}
	nf := float64(n)
	r.PSNR /= nf
	r.SSIM /= nf
	r.MSSSIM /= nf
	r.VIF /= nf
	return r, nil
}

// PSNRContext is PSNR with per-frame fan-out and cooperative cancellation;
// identical to PSNR for every worker count.
func PSNRContext(ctx context.Context, ref, dist *frame.Sequence, workers int) (float64, error) {
	if len(ref.Frames) != len(dist.Frames) {
		return 0, fmt.Errorf("quality: sequence lengths %d vs %d differ", len(ref.Frames), len(dist.Frames))
	}
	if len(ref.Frames) == 0 {
		return 0, fmt.Errorf("quality: empty sequences")
	}
	n := len(ref.Frames)
	perFrame := make([]float64, n)
	err := par.ForEach(ctx, n, workers, func(i int) error {
		p, err := PSNRFrame(ref.Frames[i], dist.Frames[i])
		if err != nil {
			return err
		}
		perFrame[i] = p
		return nil
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, p := range perFrame {
		sum += p
	}
	return sum / float64(n), nil
}
