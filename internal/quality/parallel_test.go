package quality

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"videoapp/internal/frame"
)

// noisySequences builds a deterministic reference/distorted pair with
// varied per-frame damage so every metric has real work to do.
func noisySequences(frames int) (*frame.Sequence, *frame.Sequence) {
	rng := rand.New(rand.NewSource(99))
	ref := &frame.Sequence{Name: "ref"}
	dist := &frame.Sequence{Name: "dist"}
	for f := 0; f < frames; f++ {
		a := frame.MustNew(96, 64)
		b := frame.MustNew(96, 64)
		for i := range a.Y {
			v := uint8(rng.Intn(256))
			a.Y[i] = v
			b.Y[i] = frame.ClampU8(int(v) + rng.Intn(2*f+3) - (f + 1))
		}
		for i := range a.Cb {
			a.Cb[i], a.Cr[i] = 128, 128
			b.Cb[i], b.Cr[i] = 128, 128
		}
		ref.Frames = append(ref.Frames, a)
		dist.Frames = append(dist.Frames, b)
	}
	return ref, dist
}

func TestMeasureContextBitIdentical(t *testing.T) {
	ref, dist := noisySequences(13)
	serial, err := Measure(ref, dist)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := MeasureContext(context.Background(), ref, dist, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != serial {
			t.Fatalf("workers=%d: %+v != serial %+v", workers, got, serial)
		}
	}
	p, err := PSNR(ref, dist)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := PSNRContext(context.Background(), ref, dist, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Fatalf("workers=%d: PSNR %v != serial %v", workers, got, p)
		}
	}
}

func TestMeasureContextErrors(t *testing.T) {
	ref, dist := noisySequences(4)
	if _, err := MeasureContext(context.Background(), ref, &frame.Sequence{}, 2); err == nil {
		t.Fatal("length mismatch must error")
	}
	short := &frame.Sequence{Frames: append([]*frame.Frame(nil), dist.Frames...)}
	short.Frames[2] = frame.MustNew(32, 32)
	if _, err := MeasureContext(context.Background(), ref, short, 2); err == nil {
		t.Fatal("frame geometry mismatch must error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MeasureContext(ctx, ref, dist, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
	if _, err := PSNRContext(ctx, ref, dist, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}
