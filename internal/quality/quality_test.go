package quality

import (
	"math"
	"math/rand"
	"testing"

	"videoapp/internal/frame"
)

func noisy(f *frame.Frame, sigma float64, seed int64) *frame.Frame {
	rng := rand.New(rand.NewSource(seed))
	g := f.Clone()
	for i := range g.Y {
		g.Y[i] = frame.ClampU8(int(float64(g.Y[i]) + rng.NormFloat64()*sigma))
	}
	return g
}

func textured(w, h int) *frame.Frame {
	f := frame.MustNew(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Y[y*w+x] = frame.ClampU8(128 + int(80*math.Sin(float64(x)*0.21)*math.Cos(float64(y)*0.17)))
		}
	}
	return f
}

func TestPSNRIdentical(t *testing.T) {
	f := textured(64, 64)
	p, err := PSNRFrame(f, f)
	if err != nil {
		t.Fatal(err)
	}
	if p != MaxPSNR {
		t.Fatalf("identical frames: PSNR %v, want %v", p, MaxPSNR)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	a := frame.MustNew(16, 16)
	b := frame.MustNew(16, 16)
	for i := range b.Y {
		b.Y[i] = 10 // uniform error of 10 -> MSE 100
	}
	p, _ := PSNRFrame(a, b)
	want := 10 * math.Log10(255*255/100.0)
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("PSNR %v, want %v", p, want)
	}
}

func TestPSNRDecreasesWithNoise(t *testing.T) {
	f := textured(64, 64)
	p1, _ := PSNRFrame(f, noisy(f, 2, 1))
	p2, _ := PSNRFrame(f, noisy(f, 8, 1))
	if !(p1 > p2) {
		t.Fatalf("PSNR must decrease with noise: %v <= %v", p1, p2)
	}
}

func TestPSNRSizeMismatch(t *testing.T) {
	if _, err := PSNRFrame(frame.MustNew(16, 16), frame.MustNew(32, 32)); err == nil {
		t.Fatal("size mismatch must error")
	}
}

func TestSSIMBounds(t *testing.T) {
	f := textured(64, 64)
	s, _ := SSIMFrame(f, f)
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("SSIM of identical = %v", s)
	}
	n := noisy(f, 20, 2)
	s2, _ := SSIMFrame(f, n)
	if s2 >= s || s2 < -1 {
		t.Fatalf("SSIM of noisy = %v", s2)
	}
}

func TestSSIMOrdering(t *testing.T) {
	f := textured(64, 64)
	s1, _ := SSIMFrame(f, noisy(f, 3, 3))
	s2, _ := SSIMFrame(f, noisy(f, 12, 3))
	if !(s1 > s2) {
		t.Fatalf("SSIM must decrease with noise: %v <= %v", s1, s2)
	}
}

func TestMSSSIMIdenticalAndOrdering(t *testing.T) {
	f := textured(128, 128)
	m, _ := MSSSIMFrame(f, f)
	if math.Abs(m-1) > 1e-6 {
		t.Fatalf("MS-SSIM identical = %v", m)
	}
	m1, _ := MSSSIMFrame(f, noisy(f, 4, 4))
	m2, _ := MSSSIMFrame(f, noisy(f, 16, 4))
	if !(m1 > m2) {
		t.Fatalf("MS-SSIM ordering: %v <= %v", m1, m2)
	}
}

func TestMSSSIMSmallFrameFallsBack(t *testing.T) {
	f := textured(16, 16)
	if _, err := MSSSIMFrame(f, f); err != nil {
		t.Fatal(err)
	}
}

func TestVIFBoundsAndOrdering(t *testing.T) {
	f := textured(64, 64)
	v, _ := VIFFrame(f, f)
	if math.Abs(v-1) > 1e-6 {
		t.Fatalf("VIF identical = %v", v)
	}
	v1, _ := VIFFrame(f, noisy(f, 4, 5))
	v2, _ := VIFFrame(f, noisy(f, 16, 5))
	if !(v1 > v2) {
		t.Fatalf("VIF ordering: %v <= %v", v1, v2)
	}
	if v2 < 0 {
		t.Fatalf("VIF below 0: %v", v2)
	}
}

func seqOf(frames ...*frame.Frame) *frame.Sequence {
	return &frame.Sequence{FPS: 30, Frames: frames}
}

func TestSequenceAverages(t *testing.T) {
	f := textured(64, 64)
	g := noisy(f, 10, 6)
	pf, _ := PSNRFrame(f, g)
	ps, err := PSNR(seqOf(f, f), seqOf(g, f))
	if err != nil {
		t.Fatal(err)
	}
	want := (pf + MaxPSNR) / 2
	if math.Abs(ps-want) > 1e-9 {
		t.Fatalf("sequence PSNR %v, want %v", ps, want)
	}
}

func TestSequenceLengthMismatch(t *testing.T) {
	f := textured(64, 64)
	if _, err := PSNR(seqOf(f), seqOf(f, f)); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := PSNR(seqOf(), seqOf()); err == nil {
		t.Fatal("empty must error")
	}
}

func TestMeasureAllMetrics(t *testing.T) {
	f := textured(64, 64)
	g := noisy(f, 6, 7)
	r, err := Measure(seqOf(f), seqOf(g))
	if err != nil {
		t.Fatal(err)
	}
	if r.PSNR <= 0 || r.SSIM <= 0 || r.MSSSIM <= 0 || r.VIF <= 0 {
		t.Fatalf("all metrics must be positive for mildly noisy content: %+v", r)
	}
	if r.SSIM > 1 || r.MSSSIM > 1 || r.VIF > 1.01 {
		t.Fatalf("similarity metrics must not exceed 1: %+v", r)
	}
}

func TestMetricsAgreeOnRanking(t *testing.T) {
	// All four metrics must rank a lightly-damaged video above a heavily
	// damaged one — the cross-metric consistency the paper relies on (§6.1).
	f := textured(128, 128)
	light := seqOf(noisy(f, 3, 8))
	heavy := seqOf(noisy(f, 25, 8))
	ref := seqOf(f)
	rl, _ := Measure(ref, light)
	rh, _ := Measure(ref, heavy)
	if !(rl.PSNR > rh.PSNR && rl.SSIM > rh.SSIM && rl.MSSSIM > rh.MSSSIM && rl.VIF > rh.VIF) {
		t.Fatalf("metric ranking disagreement: light %+v heavy %+v", rl, rh)
	}
}

func BenchmarkPSNR720p(b *testing.B) {
	b.ReportAllocs()
	f := textured(1280, 720)
	g := noisy(f, 5, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PSNRFrame(f, g)
	}
}

func BenchmarkSSIM720p(b *testing.B) {
	b.ReportAllocs()
	f := textured(1280, 720)
	g := noisy(f, 5, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSIMFrame(f, g)
	}
}
