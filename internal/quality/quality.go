// Package quality implements the objective video quality metrics used by the
// evaluation: PSNR (the paper's reported metric), SSIM, MS-SSIM and a
// pixel-domain VIF, each averaged across frames as is standard practice.
// It stands in for the VQMT measurement tool used by the paper.
package quality

import (
	"fmt"
	"math"

	"videoapp/internal/frame"
)

// MaxPSNR caps reported PSNR for (near-)identical content, where the true
// value is unbounded; 100 dB conventionally denotes "identical".
const MaxPSNR = 100.0

// PSNRFrame computes luma peak-signal-to-noise ratio between two frames.
func PSNRFrame(a, b *frame.Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("quality: frame sizes %dx%d vs %dx%d differ", a.W, a.H, b.W, b.H)
	}
	var se float64
	for i := range a.Y {
		d := float64(int(a.Y[i]) - int(b.Y[i]))
		se += d * d
	}
	mse := se / float64(len(a.Y))
	if mse == 0 {
		return MaxPSNR, nil
	}
	p := 10 * math.Log10(255*255/mse)
	if p > MaxPSNR {
		p = MaxPSNR
	}
	return p, nil
}

// PSNR computes the average per-frame luma PSNR across two sequences,
// following the paper's methodology (average PSNR across frames).
func PSNR(a, b *frame.Sequence) (float64, error) {
	if len(a.Frames) != len(b.Frames) {
		return 0, fmt.Errorf("quality: sequence lengths %d vs %d differ", len(a.Frames), len(b.Frames))
	}
	if len(a.Frames) == 0 {
		return 0, fmt.Errorf("quality: empty sequences")
	}
	var sum float64
	for i := range a.Frames {
		p, err := PSNRFrame(a.Frames[i], b.Frames[i])
		if err != nil {
			return 0, err
		}
		sum += p
	}
	return sum / float64(len(a.Frames)), nil
}

// SSIM constants per the original paper (k1=0.01, k2=0.03, L=255).
const (
	ssimC1 = (0.01 * 255) * (0.01 * 255)
	ssimC2 = (0.03 * 255) * (0.03 * 255)
)

// SSIMFrame computes mean structural similarity over 8×8 windows of the
// luma plane.
func SSIMFrame(a, b *frame.Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("quality: frame sizes differ")
	}
	return ssimPlane(a.Y, b.Y, a.W, a.H), nil
}

func ssimPlane(ya, yb []uint8, w, h int) float64 {
	const win = 8
	var total float64
	n := 0
	for by := 0; by+win <= h; by += win {
		for bx := 0; bx+win <= w; bx += win {
			var sa, sb, saa, sbb, sab float64
			for y := 0; y < win; y++ {
				for x := 0; x < win; x++ {
					pa := float64(ya[(by+y)*w+bx+x])
					pb := float64(yb[(by+y)*w+bx+x])
					sa += pa
					sb += pb
					saa += pa * pa
					sbb += pb * pb
					sab += pa * pb
				}
			}
			np := float64(win * win)
			ma, mb := sa/np, sb/np
			va := saa/np - ma*ma
			vb := sbb/np - mb*mb
			cov := sab/np - ma*mb
			s := ((2*ma*mb + ssimC1) * (2*cov + ssimC2)) /
				((ma*ma + mb*mb + ssimC1) * (va + vb + ssimC2))
			total += s
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return total / float64(n)
}

// SSIM averages SSIMFrame across the sequences.
func SSIM(a, b *frame.Sequence) (float64, error) {
	if len(a.Frames) != len(b.Frames) || len(a.Frames) == 0 {
		return 0, fmt.Errorf("quality: sequence length mismatch")
	}
	var sum float64
	for i := range a.Frames {
		s, err := SSIMFrame(a.Frames[i], b.Frames[i])
		if err != nil {
			return 0, err
		}
		sum += s
	}
	return sum / float64(len(a.Frames)), nil
}

// msScaleWeights are the standard MS-SSIM scale weights (Wang et al.).
var msScaleWeights = []float64{0.0448, 0.2856, 0.3001, 0.2363, 0.1333}

// MSSSIMFrame computes multi-scale SSIM on the luma plane with up to five
// dyadic scales (fewer for small frames).
func MSSSIMFrame(a, b *frame.Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("quality: frame sizes differ")
	}
	ya := append([]uint8(nil), a.Y...)
	yb := append([]uint8(nil), b.Y...)
	w, h := a.W, a.H
	result := 1.0
	used := 0.0
	for s := 0; s < len(msScaleWeights); s++ {
		if w < 16 || h < 16 {
			break
		}
		v := ssimPlane(ya, yb, w, h)
		if v < 0 {
			v = 0
		}
		result *= math.Pow(v, msScaleWeights[s])
		used += msScaleWeights[s]
		ya, yb = downsample2(ya, w, h), downsample2(yb, w, h)
		w, h = w/2, h/2
	}
	if used == 0 {
		return ssimPlane(a.Y, b.Y, a.W, a.H), nil
	}
	// Renormalize so truncated pyramids stay on the same scale.
	return math.Pow(result, 1/used), nil
}

func downsample2(y []uint8, w, h int) []uint8 {
	nw, nh := w/2, h/2
	out := make([]uint8, nw*nh)
	for yy := 0; yy < nh; yy++ {
		for xx := 0; xx < nw; xx++ {
			s := int(y[(2*yy)*w+2*xx]) + int(y[(2*yy)*w+2*xx+1]) +
				int(y[(2*yy+1)*w+2*xx]) + int(y[(2*yy+1)*w+2*xx+1])
			out[yy*nw+xx] = uint8((s + 2) / 4)
		}
	}
	return out
}

// MSSSIM averages MSSSIMFrame across the sequences.
func MSSSIM(a, b *frame.Sequence) (float64, error) {
	if len(a.Frames) != len(b.Frames) || len(a.Frames) == 0 {
		return 0, fmt.Errorf("quality: sequence length mismatch")
	}
	var sum float64
	for i := range a.Frames {
		s, err := MSSSIMFrame(a.Frames[i], b.Frames[i])
		if err != nil {
			return 0, err
		}
		sum += s
	}
	return sum / float64(len(a.Frames)), nil
}

// VIFFrame computes a pixel-domain Visual Information Fidelity score over
// 8×8 windows: the ratio of information the distorted image preserves about
// the (Gaussian-modelled) source. 1 means no loss; 0 means everything lost.
func VIFFrame(a, b *frame.Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("quality: frame sizes differ")
	}
	const win = 8
	const sigmaN = 2.0 // HVS noise variance
	var num, den float64
	w, h := a.W, a.H
	for by := 0; by+win <= h; by += win {
		for bx := 0; bx+win <= w; bx += win {
			var sa, sb, saa, sbb, sab float64
			for y := 0; y < win; y++ {
				for x := 0; x < win; x++ {
					pa := float64(a.Y[(by+y)*w+bx+x])
					pb := float64(b.Y[(by+y)*w+bx+x])
					sa += pa
					sb += pb
					saa += pa * pa
					sbb += pb * pb
					sab += pa * pb
				}
			}
			np := float64(win * win)
			ma, mb := sa/np, sb/np
			va := saa/np - ma*ma
			vb := sbb/np - mb*mb
			cov := sab/np - ma*mb
			if va < 1e-10 {
				continue
			}
			g := cov / (va + 1e-10)
			sv := vb - g*cov
			if g < 0 {
				g, sv = 0, vb
			}
			if sv < 0 {
				sv = 0
			}
			num += math.Log2(1 + g*g*va/(sv+sigmaN))
			den += math.Log2(1 + va/sigmaN)
		}
	}
	if den == 0 {
		return 1, nil
	}
	return num / den, nil
}

// VIF averages VIFFrame across the sequences.
func VIF(a, b *frame.Sequence) (float64, error) {
	if len(a.Frames) != len(b.Frames) || len(a.Frames) == 0 {
		return 0, fmt.Errorf("quality: sequence length mismatch")
	}
	var sum float64
	for i := range a.Frames {
		s, err := VIFFrame(a.Frames[i], b.Frames[i])
		if err != nil {
			return 0, err
		}
		sum += s
	}
	return sum / float64(len(a.Frames)), nil
}

// Report bundles all metrics for one comparison.
type Report struct {
	PSNR   float64
	SSIM   float64
	MSSSIM float64
	VIF    float64
}

// Measure computes every supported metric between reference and distorted.
func Measure(ref, dist *frame.Sequence) (Report, error) {
	var r Report
	var err error
	if r.PSNR, err = PSNR(ref, dist); err != nil {
		return r, err
	}
	if r.SSIM, err = SSIM(ref, dist); err != nil {
		return r, err
	}
	if r.MSSSIM, err = MSSSIM(ref, dist); err != nil {
		return r, err
	}
	if r.VIF, err = VIF(ref, dist); err != nil {
		return r, err
	}
	return r, nil
}
