package quality

import (
	"math"
	"testing"

	"videoapp/internal/frame"
)

func TestVIFFlatFrames(t *testing.T) {
	// Zero-variance reference: every window skipped, convention result 1.
	a := frame.MustNew(32, 32)
	a.Fill(100, 128, 128)
	b := a.Clone()
	v, err := VIFFrame(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("flat/flat VIF = %v", v)
	}
}

func TestVIFSizeMismatch(t *testing.T) {
	if _, err := VIFFrame(frame.MustNew(16, 16), frame.MustNew(32, 32)); err == nil {
		t.Fatal("size mismatch must error")
	}
	if _, err := MSSSIMFrame(frame.MustNew(16, 16), frame.MustNew(32, 32)); err == nil {
		t.Fatal("size mismatch must error")
	}
	if _, err := SSIMFrame(frame.MustNew(16, 16), frame.MustNew(32, 32)); err == nil {
		t.Fatal("size mismatch must error")
	}
}

func TestSequenceMetricErrorsPropagate(t *testing.T) {
	good := &frame.Sequence{Frames: []*frame.Frame{frame.MustNew(16, 16)}}
	bad := &frame.Sequence{Frames: []*frame.Frame{frame.MustNew(32, 32)}}
	if _, err := SSIM(good, bad); err == nil {
		t.Fatal("SSIM must propagate frame errors")
	}
	if _, err := MSSSIM(good, bad); err == nil {
		t.Fatal("MSSSIM must propagate frame errors")
	}
	if _, err := VIF(good, bad); err == nil {
		t.Fatal("VIF must propagate frame errors")
	}
	if _, err := Measure(good, bad); err == nil {
		t.Fatal("Measure must propagate frame errors")
	}
	if _, err := SSIM(good, &frame.Sequence{}); err == nil {
		t.Fatal("length mismatch")
	}
	if _, err := MSSSIM(good, &frame.Sequence{}); err == nil {
		t.Fatal("length mismatch")
	}
	if _, err := VIF(good, &frame.Sequence{}); err == nil {
		t.Fatal("length mismatch")
	}
}

func TestSSIMTinyFrameNoWindows(t *testing.T) {
	// 16x16 still has 8x8 windows; construct a case with none by using the
	// plane helper directly on a 4x4 grid.
	if got := ssimPlane(make([]uint8, 16), make([]uint8, 16), 4, 4); got != 1 {
		t.Fatalf("no-window SSIM = %v, want neutral 1", got)
	}
}

func TestDownsample2Averages(t *testing.T) {
	in := []uint8{10, 20, 30, 40}
	out := downsample2(in, 2, 2)
	if len(out) != 1 || out[0] != 25 {
		t.Fatalf("downsample %v", out)
	}
}

func TestPSNRCapsAtMax(t *testing.T) {
	a := frame.MustNew(16, 16)
	b := a.Clone()
	b.Y[0] ^= 0 // identical
	p, _ := PSNRFrame(a, b)
	if p != MaxPSNR {
		t.Fatal("cap")
	}
	// A single off-by-one pixel: huge but finite, below the cap.
	b.Y[0]++
	p, _ = PSNRFrame(a, b)
	if p >= MaxPSNR || math.IsInf(p, 0) {
		t.Fatalf("near-identical PSNR %v", p)
	}
}

func TestMSSSIMRenormalization(t *testing.T) {
	// Frames allowing only some pyramid levels must still land in [0,1].
	f := frame.MustNew(32, 32)
	for i := range f.Y {
		f.Y[i] = uint8(i * 7 % 256)
	}
	g := f.Clone()
	for i := range g.Y {
		g.Y[i] = frame.ClampU8(int(g.Y[i]) + i%13 - 6)
	}
	m, err := MSSSIMFrame(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if m < 0 || m > 1 {
		t.Fatalf("MS-SSIM %v out of range", m)
	}
}
