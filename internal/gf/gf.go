// Package gf implements arithmetic in binary Galois fields GF(2^m) and in
// polynomial rings over GF(2), the algebraic substrate of the BCH error
// correction codes used for variable-reliability storage.
package gf

import "fmt"

// Default primitive polynomials (including the x^m term) for each supported
// field order, indexed by m. Taken from standard BCH/Reed-Solomon tables.
var primitivePolys = map[uint]uint32{
	3:  0x0B,   // x^3 + x + 1
	4:  0x13,   // x^4 + x + 1
	5:  0x25,   // x^5 + x^2 + 1
	6:  0x43,   // x^6 + x + 1
	7:  0x89,   // x^7 + x^3 + 1
	8:  0x11D,  // x^8 + x^4 + x^3 + x^2 + 1
	9:  0x211,  // x^9 + x^4 + 1
	10: 0x409,  // x^10 + x^3 + 1
	11: 0x805,  // x^11 + x^2 + 1
	12: 0x1053, // x^12 + x^6 + x^4 + x + 1
	13: 0x201B, // x^13 + x^4 + x^3 + x + 1
	14: 0x4443, // x^14 + x^10 + x^6 + x + 1
}

// Field is a GF(2^m) field with precomputed exp/log tables.
type Field struct {
	m    uint   // extension degree
	n    int    // multiplicative order, 2^m - 1
	exp  []int  // exp[i] = alpha^i, doubled for mod-free lookup
	log  []int  // log[x] = i such that alpha^i = x; log[0] unused
	poly uint32 // primitive polynomial
}

// NewField constructs GF(2^m) using the standard primitive polynomial.
// Supported m range is 3..14.
func NewField(m uint) (*Field, error) {
	poly, ok := primitivePolys[m]
	if !ok {
		return nil, fmt.Errorf("gf: unsupported field degree m=%d", m)
	}
	n := 1<<m - 1
	f := &Field{
		m:    m,
		n:    n,
		exp:  make([]int, 2*n),
		log:  make([]int, n+1),
		poly: poly,
	}
	x := 1
	for i := 0; i < n; i++ {
		f.exp[i] = x
		f.exp[i+n] = x
		f.log[x] = i
		x <<= 1
		if x > n {
			x ^= int(poly)
		}
	}
	return f, nil
}

// MustField is NewField panicking on unsupported m; for static tables.
func MustField(m uint) *Field {
	f, err := NewField(m)
	if err != nil {
		panic(err)
	}
	return f
}

// M returns the extension degree m.
func (f *Field) M() uint { return f.m }

// N returns the multiplicative order 2^m - 1.
func (f *Field) N() int { return f.n }

// Exp returns alpha^i for any integer i (reduced mod 2^m-1).
func (f *Field) Exp(i int) int {
	i %= f.n
	if i < 0 {
		i += f.n
	}
	return f.exp[i]
}

// Log returns the discrete logarithm of x; x must be nonzero.
func (f *Field) Log(x int) int {
	if x == 0 {
		panic("gf: log of zero")
	}
	return f.log[x]
}

// Mul returns the field product of a and b.
func (f *Field) Mul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Div returns a/b; b must be nonzero.
func (f *Field) Div(a, b int) int {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[f.log[a]-f.log[b]+f.n]
}

// Inv returns the multiplicative inverse of a; a must be nonzero.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.exp[f.n-f.log[a]]
}

// Pow returns a^k, with 0^0 = 1.
func (f *Field) Pow(a, k int) int {
	if a == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	e := (f.log[a] * k) % f.n
	if e < 0 {
		e += f.n
	}
	return f.exp[e]
}

// MinimalPoly returns the minimal polynomial over GF(2) of alpha^i as a
// Poly2 (bit k set means the x^k coefficient is 1).
//
// It is computed as the product of (x - alpha^{i·2^j}) over the cyclotomic
// coset of i, carried out with polynomial coefficients in GF(2^m); the
// result provably has coefficients in {0,1}.
func (f *Field) MinimalPoly(i int) Poly2 {
	// Collect the cyclotomic coset of i mod n.
	seen := map[int]bool{}
	coset := []int{}
	for e := i % f.n; !seen[e]; e = e * 2 % f.n {
		seen[e] = true
		coset = append(coset, e)
	}
	// poly holds coefficients in GF(2^m), low degree first; start with 1.
	poly := []int{1}
	for _, e := range coset {
		root := f.Exp(e)
		next := make([]int, len(poly)+1)
		for d, c := range poly {
			next[d+1] ^= c            // x * c
			next[d] ^= f.Mul(c, root) // root * c (char 2: add == xor)
		}
		poly = next
	}
	var p Poly2
	for d, c := range poly {
		switch c {
		case 0:
		case 1:
			p = p.setBit(d)
		default:
			panic("gf: minimal polynomial has non-binary coefficient")
		}
	}
	return p
}
