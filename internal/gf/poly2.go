package gf

// Poly2 is a polynomial over GF(2), stored as a little-endian bitset:
// word w bit b holds the coefficient of x^(64w+b). The zero value is the
// zero polynomial. Poly2 values are immutable; operations return new values.
type Poly2 []uint64

// Poly2FromCoeffs builds a polynomial from the exponents with coefficient 1.
func Poly2FromCoeffs(exponents ...int) Poly2 {
	var p Poly2
	for _, e := range exponents {
		p = p.setBit(e)
	}
	return p
}

// One is the constant polynomial 1.
func One() Poly2 { return Poly2{1} }

func (p Poly2) setBit(d int) Poly2 {
	w := d / 64
	q := make(Poly2, max(len(p), w+1))
	copy(q, p)
	q[w] ^= 1 << uint(d%64)
	return q
}

// Bit returns the coefficient of x^d.
func (p Poly2) Bit(d int) int {
	w := d / 64
	if d < 0 || w >= len(p) {
		return 0
	}
	return int(p[w] >> uint(d%64) & 1)
}

// Degree returns the degree, or -1 for the zero polynomial.
func (p Poly2) Degree() int {
	for w := len(p) - 1; w >= 0; w-- {
		if p[w] != 0 {
			d := 63
			for p[w]>>uint(d)&1 == 0 {
				d--
			}
			return 64*w + d
		}
	}
	return -1
}

// IsZero reports whether p is the zero polynomial.
func (p Poly2) IsZero() bool { return p.Degree() == -1 }

// Add returns p + q (XOR of coefficients).
func (p Poly2) Add(q Poly2) Poly2 {
	r := make(Poly2, max(len(p), len(q)))
	copy(r, p)
	for i, w := range q {
		r[i] ^= w
	}
	return r.trim()
}

// Mul returns the product p·q over GF(2).
func (p Poly2) Mul(q Poly2) Poly2 {
	dp, dq := p.Degree(), q.Degree()
	if dp < 0 || dq < 0 {
		return nil
	}
	r := make(Poly2, (dp+dq)/64+1)
	for i := 0; i <= dp; i++ {
		if p.Bit(i) == 0 {
			continue
		}
		for j := 0; j <= dq; j++ {
			if q.Bit(j) == 1 {
				d := i + j
				r[d/64] ^= 1 << uint(d%64)
			}
		}
	}
	return r.trim()
}

// Mod returns p mod q; q must be nonzero.
func (p Poly2) Mod(q Poly2) Poly2 {
	dq := q.Degree()
	if dq < 0 {
		panic("gf: modulo by zero polynomial")
	}
	r := make(Poly2, len(p))
	copy(r, p)
	for {
		dr := r.Degree()
		if dr < dq {
			return r.trim()
		}
		shift := dr - dq
		for j := 0; j <= dq; j++ {
			if q.Bit(j) == 1 {
				d := j + shift
				r[d/64] ^= 1 << uint(d%64)
			}
		}
	}
}

// Equal reports whether p and q have identical coefficients.
func (p Poly2) Equal(q Poly2) bool {
	n := max(len(p), len(q))
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

func (p Poly2) trim() Poly2 {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
