package gf

import (
	"testing"
	"testing/quick"
)

func TestFieldBasics(t *testing.T) {
	f := MustField(10)
	if f.N() != 1023 {
		t.Fatalf("N = %d", f.N())
	}
	if f.Exp(0) != 1 {
		t.Fatal("alpha^0 must be 1")
	}
	if f.Exp(f.N()) != 1 {
		t.Fatal("alpha^n must wrap to 1")
	}
}

func TestExpLogInverse(t *testing.T) {
	f := MustField(10)
	for x := 1; x <= f.N(); x++ {
		if f.Exp(f.Log(x)) != x {
			t.Fatalf("exp(log(%d)) != %d", x, x)
		}
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	f := MustField(8)
	cfg := &quick.Config{MaxCount: 500}
	comm := func(a, b uint16) bool {
		x, y := int(a)%256, int(b)%256
		return f.Mul(x, y) == f.Mul(y, x)
	}
	if err := quick.Check(comm, cfg); err != nil {
		t.Fatal(err)
	}
	assoc := func(a, b, c uint16) bool {
		x, y, z := int(a)%256, int(b)%256, int(c)%256
		return f.Mul(f.Mul(x, y), z) == f.Mul(x, f.Mul(y, z))
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMulDistributesOverAdd(t *testing.T) {
	f := MustField(8)
	prop := func(a, b, c uint16) bool {
		x, y, z := int(a)%256, int(b)%256, int(c)%256
		return f.Mul(x, y^z) == f.Mul(x, y)^f.Mul(x, z)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInvDiv(t *testing.T) {
	f := MustField(10)
	for x := 1; x <= f.N(); x++ {
		if f.Mul(x, f.Inv(x)) != 1 {
			t.Fatalf("x*inv(x) != 1 for x=%d", x)
		}
	}
	if f.Div(0, 5) != 0 {
		t.Fatal("0/b must be 0")
	}
	if f.Div(f.Mul(7, 9), 9) != 7 {
		t.Fatal("(a*b)/b must be a")
	}
}

func TestPow(t *testing.T) {
	f := MustField(6)
	for a := 1; a <= f.N(); a++ {
		got := f.Pow(a, 3)
		want := f.Mul(a, f.Mul(a, a))
		if got != want {
			t.Fatalf("pow(%d,3) = %d, want %d", a, got, want)
		}
	}
	if f.Pow(0, 0) != 1 || f.Pow(0, 5) != 0 {
		t.Fatal("0^0 = 1, 0^k = 0")
	}
	if f.Pow(5, 0) != 1 {
		t.Fatal("a^0 = 1")
	}
	// Negative exponents follow the cyclic group.
	if f.Pow(5, -1) != f.Inv(5) {
		t.Fatal("a^-1 = inv(a)")
	}
}

func TestUnsupportedField(t *testing.T) {
	if _, err := NewField(2); err == nil {
		t.Fatal("m=2 must be rejected")
	}
	if _, err := NewField(20); err == nil {
		t.Fatal("m=20 must be rejected")
	}
}

func TestMinimalPolyHasRoot(t *testing.T) {
	f := MustField(10)
	for _, i := range []int{1, 3, 5, 7, 9, 11} {
		mp := f.MinimalPoly(i)
		// Evaluate mp at alpha^i in GF(2^m): must be 0.
		val := 0
		for d := 0; d <= mp.Degree(); d++ {
			if mp.Bit(d) == 1 {
				val ^= f.Pow(f.Exp(i), d)
			}
		}
		if val != 0 {
			t.Fatalf("minimal poly of alpha^%d does not vanish at its root", i)
		}
		if mp.Degree() > int(f.M()) {
			t.Fatalf("minimal poly degree %d exceeds m", mp.Degree())
		}
	}
}

func TestMinimalPolyOfAlpha(t *testing.T) {
	// For the primitive element, the minimal polynomial is the primitive
	// polynomial itself: x^10 + x^3 + 1.
	f := MustField(10)
	want := Poly2FromCoeffs(10, 3, 0)
	if got := f.MinimalPoly(1); !got.Equal(want) {
		t.Fatalf("minimal poly of alpha = %v, want %v", got, want)
	}
}

func TestPoly2Degree(t *testing.T) {
	if !(Poly2{}).IsZero() {
		t.Fatal("empty poly is zero")
	}
	if (Poly2{}).Degree() != -1 {
		t.Fatal("zero poly degree is -1")
	}
	if One().Degree() != 0 {
		t.Fatal("deg(1) = 0")
	}
	if Poly2FromCoeffs(100).Degree() != 100 {
		t.Fatal("deg(x^100) = 100")
	}
}

func TestPoly2AddSelfIsZero(t *testing.T) {
	p := Poly2FromCoeffs(0, 3, 17, 80)
	if !p.Add(p).IsZero() {
		t.Fatal("p + p = 0 over GF(2)")
	}
}

func TestPoly2MulDegrees(t *testing.T) {
	p := Poly2FromCoeffs(3, 1, 0) // x^3+x+1
	q := Poly2FromCoeffs(2, 0)    // x^2+1
	r := p.Mul(q)
	if r.Degree() != 5 {
		t.Fatalf("deg = %d", r.Degree())
	}
	// (x^3+x+1)(x^2+1) = x^5+x^3 + x^3+x + x^2+1 = x^5+x^2+x+1
	want := Poly2FromCoeffs(5, 2, 1, 0)
	if !r.Equal(want) {
		t.Fatalf("got %v, want %v", r, want)
	}
}

func TestPoly2Mod(t *testing.T) {
	p := Poly2FromCoeffs(5, 2, 1, 0)
	q := Poly2FromCoeffs(3, 1, 0)
	// p = q * (x^2+1), so p mod q = 0.
	if !p.Mod(q).IsZero() {
		t.Fatal("exact division must leave zero remainder")
	}
	// (p + x) mod q = x.
	r := p.Add(Poly2FromCoeffs(1)).Mod(q)
	if !r.Equal(Poly2FromCoeffs(1)) {
		t.Fatalf("got %v", r)
	}
}

func TestPoly2MulModProperty(t *testing.T) {
	// (a*b) mod b == 0 for random small polynomials.
	prop := func(a, b uint32) bool {
		pa := Poly2{uint64(a) | 1} // ensure nonzero
		pb := Poly2{uint64(b) | 2}
		return pa.Mul(pb).Mod(pb).IsZero()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFieldMul(b *testing.B) {
	b.ReportAllocs()
	f := MustField(10)
	acc := 1
	for i := 0; i < b.N; i++ {
		acc = f.Mul(acc, 517)
		if acc == 0 {
			acc = 1
		}
	}
	_ = acc
}
