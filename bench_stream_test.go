package videoapp

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"videoapp/internal/y4m"
)

// BenchmarkStreamMemory compares the peak heap growth of the batch pipeline
// against the streaming one on a 1x and a 4x-length input read from a .y4m
// file. Batch materializes every raw frame plus the whole encoded video, so
// its peak grows linearly with the frame count; streaming holds only the
// chunks in flight, so its peak must stay roughly flat (the acceptance
// criterion is sublinear growth batch→stream at 4x). Peaks are reported as
// the peak-MB metric; results are committed in results/stream_bench.md.
//
//	make bench-stream
func BenchmarkStreamMemory(b *testing.B) {
	b.ReportAllocs()
	const baseFrames = 48 // 12 closed GOPs at GOPSize 4
	params := DefaultParams()
	params.GOPSize = 4
	params.SearchRange = 8

	writeY4M := func(frames int) string {
		seq, err := GenerateTestVideo("crew_like", 160, 96, frames)
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(b.TempDir(), "in.y4m")
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := y4m.Write(f, seq); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		return path
	}

	for _, scale := range []int{1, 4} {
		frames := scale * baseFrames
		path := writeY4M(frames)

		batch := func(b *testing.B) {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			seq, err := y4m.ReadAll(f, path)
			if err != nil {
				b.Fatal(err)
			}
			p := NewPipeline(WithParams(params))
			if _, err := p.ProcessContext(context.Background(), seq); err != nil {
				b.Fatal(err)
			}
		}
		stream := func(b *testing.B) {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			src, err := Y4MSource(f, path)
			if err != nil {
				b.Fatal(err)
			}
			p := NewPipeline(WithParams(params), WithChunkGOPs(1))
			if _, _, err := p.StreamToArchive(context.Background(), src, io.Discard); err != nil {
				b.Fatal(err)
			}
		}

		b.Run("mode=batch/frames="+strconv.Itoa(frames), func(b *testing.B) {
			benchPeakHeap(b, batch)
		})
		b.Run("mode=stream/frames="+strconv.Itoa(frames), func(b *testing.B) {
			benchPeakHeap(b, stream)
		})
	}
}

// benchPeakHeap runs fn b.N times, sampling HeapAlloc concurrently, and
// reports the worst observed peak above the post-GC baseline. Sampling at
// 200µs catches the sustained accumulation that distinguishes batch from
// streaming (raw frames + encoded video held live), which is the quantity
// under test — not transient allocator spikes.
func benchPeakHeap(b *testing.B, fn func(*testing.B)) {
	var peak atomic.Uint64
	for i := 0; i < b.N; i++ {
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)

		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			t := time.NewTicker(200 * time.Microsecond)
			defer t.Stop()
			var ms runtime.MemStats
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					runtime.ReadMemStats(&ms)
					if d := ms.HeapAlloc - base.HeapAlloc; ms.HeapAlloc > base.HeapAlloc && d > peak.Load() {
						peak.Store(d)
					}
				}
			}
		}()
		fn(b)
		close(stop)
		<-done
	}
	b.ReportMetric(float64(peak.Load())/(1<<20), "peak-MB")
}
