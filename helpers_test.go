package videoapp

// Serial wrappers over the context-first subsystem entry points, shared by
// the package's tests. The public API exposes only EncodeContext,
// DecodeContext, AnalyzeContext and MeasureContext; these helpers pin the
// background context and a single worker for call sites that exercise the
// serial forms.

import "context"

func encodeSerial(seq *Sequence, p Params) (*Video, error) {
	return EncodeContext(context.Background(), seq, p, 1)
}

func encodeWorkers(seq *Sequence, p Params, workers int) (*Video, error) {
	return EncodeContext(context.Background(), seq, p, workers)
}

func decodeSerial(v *Video) (*Sequence, error) {
	return DecodeContext(context.Background(), v, 1)
}

func analyzeSerial(tb interface{ Fatalf(string, ...any) }, v *Video) *Analysis {
	an, err := AnalyzeContext(context.Background(), v, 1)
	if err != nil {
		tb.Fatalf("analyze: %v", err)
	}
	return an
}

func measureSerial(ref, dist *Sequence) (QualityReport, error) {
	return MeasureContext(context.Background(), ref, dist, 1)
}
