package videoapp

// Integration tests exercising the complete system across module boundaries:
// synthetic capture -> encode -> analyze -> partition -> split -> encrypt ->
// approximate storage -> decrypt -> merge -> decode -> quality measurement.

import (
	"crypto/sha256"
	"math/rand"
	"testing"

	"videoapp/internal/bitio"
	"videoapp/internal/codec"
)

func TestFullPipelineWithEncryptionAndStorage(t *testing.T) {
	seq, err := GenerateTestVideo("cityride_like", 96, 64, 12)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.GOPSize = 12
	p.SearchRange = 8
	video, err := encodeSerial(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	an := analyzeSerial(t, video)
	if err := an.CheckMonotone(); err != nil {
		t.Fatal(err)
	}
	parts := an.Partition(PaperAssignment())

	// Split into per-reliability streams and encrypt each.
	ss, err := SplitStreams(video, parts)
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, 32) // AES-256
	master := []byte("integration-master-value")
	es, err := EncryptStreams(ss, ModeCTR, key, master)
	if err != nil {
		t.Fatal(err)
	}

	// Approximate storage on ciphertext: flip bits per stream at its
	// scheme's residual rate (requirement 3 makes this equivalent to
	// flipping plaintext).
	rng := rand.New(rand.NewSource(99))
	for name, ct := range es.Streams {
		var rate float64
		switch name {
		case "None":
			rate = 1e-3
		case "BCH-6":
			rate = 1e-6
		default:
			rate = 0
		}
		for i := int64(0); i < int64(len(ct))*8; i++ {
			if rate > 0 && rng.Float64() < rate {
				bitio.FlipBit(ct, i)
			}
		}
	}

	// Decrypt, merge, decode.
	back, err := es.Decrypt(key, master, parts)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := back.Merge(video)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeSerial(merged)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := PSNR(seq, dec)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 15 {
		t.Fatalf("end-to-end PSNR %.2f dB collapsed", psnr)
	}
}

func TestContainerThroughFacade(t *testing.T) {
	seq, _ := GenerateTestVideo("news_like", 64, 48, 6)
	p := DefaultParams()
	p.GOPSize = 6
	v, err := encodeSerial(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Unmarshal(Marshal(v))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := decodeSerial(v)
	b, _ := decodeSerial(v2)
	if h1, h2 := hashSeq(a), hashSeq(b); h1 != h2 {
		t.Fatal("container decode differs")
	}
}

func hashSeq(s *Sequence) [32]byte {
	h := sha256.New()
	for _, f := range s.Frames {
		h.Write(f.Y)
		h.Write(f.Cb)
		h.Write(f.Cr)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func TestStorageRoundTripAcrossAllPresets(t *testing.T) {
	// Every suite member must survive the standard pipeline.
	if testing.Short() {
		t.Skip("full suite sweep")
	}
	for _, name := range PresetNames() {
		seq, err := GenerateTestVideo(name, 64, 48, 8)
		if err != nil {
			t.Fatal(err)
		}
		p := NewPipeline()
		p.Params.GOPSize = 8
		p.Params.SearchRange = 8
		res, err := p.Process(seq)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dec, _, err := res.StoreRoundTrip(1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		psnr, _ := PSNR(seq, dec)
		if psnr < 20 {
			t.Fatalf("%s: PSNR %.2f dB", name, psnr)
		}
	}
}

func TestSlicedPipelineThroughFacade(t *testing.T) {
	seq, _ := GenerateTestVideo("sports_like", 96, 64, 8)
	p := NewPipeline()
	p.Params.GOPSize = 8
	p.Params.SlicesPerFrame = 2
	res, err := p.Process(seq)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := res.StoreRoundTrip(3)
	if err != nil {
		t.Fatal(err)
	}
	psnr, _ := PSNR(seq, dec)
	if psnr < 20 {
		t.Fatalf("sliced pipeline PSNR %.2f", psnr)
	}
}

func TestDamagedStoreStillWithinGOP(t *testing.T) {
	// Corruption from approximate storage must never leak across an
	// I-frame boundary, whatever the assignment.
	seq, _ := GenerateTestVideo("parkrun_like", 64, 48, 16)
	p := DefaultParams()
	p.GOPSize = 8
	p.SearchRange = 8
	v, err := encodeSerial(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := decodeSerial(v)
	c := v.Clone()
	// Hammer the first GOP's frames.
	for fi := 0; fi < 8; fi++ {
		for k := int64(0); k < 5; k++ {
			bitio.FlipBit(c.Frames[fi].Payload, k*17)
		}
	}
	corrupt, err := decodeSerial(c)
	if err != nil {
		t.Fatal(err)
	}
	for d := 8; d < 16; d++ {
		for i := range clean.Frames[d].Y {
			if clean.Frames[d].Y[i] != corrupt.Frames[d].Y[i] {
				t.Fatalf("damage leaked into display frame %d", d)
			}
		}
	}
}

var _ = codec.CABAC // document the re-export relationship

func TestAnalyzeAfterContainerRoundTrip(t *testing.T) {
	// The full "works on any encoded video" path: encode, persist, load,
	// reanalyze by decoding, and verify the importance analysis matches the
	// encoder-side analysis closely enough to produce the same partitions.
	seq, _ := GenerateTestVideo("crew_like", 96, 64, 10)
	p := DefaultParams()
	p.GOPSize = 10
	p.SearchRange = 8
	v, err := encodeSerial(seq, p)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Unmarshal(Marshal(v))
	if err != nil {
		t.Fatal(err)
	}
	if err := Reanalyze(loaded); err != nil {
		t.Fatal(err)
	}
	anA := analyzeSerial(t, v)
	anB := analyzeSerial(t, loaded)
	for f := range anA.Importance {
		for m := range anA.Importance[f] {
			a, b := anA.Importance[f][m], anB.Importance[f][m]
			if d := a - b; d > 1e-6 || d < -1e-6 {
				t.Fatalf("frame %d MB %d: importance %f vs %f", f, m, a, b)
			}
		}
	}
	if err := anB.CheckMonotone(); err != nil {
		t.Fatal(err)
	}
	partsA := anA.Partition(PaperAssignment())
	partsB := anB.Partition(PaperAssignment())
	for f := range partsA {
		if len(partsA[f].Pivots) != len(partsB[f].Pivots) {
			t.Fatalf("frame %d: pivot count differs", f)
		}
		for i := range partsA[f].Pivots {
			if partsA[f].Pivots[i].Scheme.Name != partsB[f].Pivots[i].Scheme.Name {
				t.Fatalf("frame %d pivot %d: scheme differs", f, i)
			}
		}
	}
}
